"""Problems in the black-white formalism (paper §2).

A problem Π is a tuple (Σ, C_W, C_B): a finite label alphabet, a white
constraint and a black constraint.  On bipartite 2-colored graphs the white
constraint governs white nodes of degree exactly ``d_W`` and the black
constraint black nodes of degree exactly ``d_B``; on hypergraphs the white
constraint governs nodes and the black constraint hyperedges (a problem is
solved *non-bipartitely* on a hypergraph exactly when it is solved
bipartitely on the incidence graph).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.formalism.configurations import Configuration, Label
from repro.formalism.constraints import Constraint
from repro.utils import FormalismError


@dataclass(frozen=True)
class Problem:
    """An immutable problem (Σ, C_W, C_B) in the black-white formalism."""

    alphabet: frozenset[Label]
    white: Constraint
    black: Constraint
    name: str = "Π"

    def __post_init__(self) -> None:
        self.white.check_alphabet(self.alphabet)
        self.black.check_alphabet(self.alphabet)

    @classmethod
    def from_constraints(
        cls, white: Constraint, black: Constraint, name: str = "Π"
    ) -> "Problem":
        """Build a problem whose alphabet is exactly the used labels."""
        return cls(
            alphabet=white.labels | black.labels,
            white=white,
            black=black,
            name=name,
        )

    @property
    def white_arity(self) -> int:
        """d_W: the size of white configurations (Δ' in the paper)."""
        return self.white.size

    @property
    def black_arity(self) -> int:
        """d_B: the size of black configurations (r' in the paper)."""
        return self.black.size

    def swap_sides(self) -> "Problem":
        """Exchange the roles of white and black constraints.

        Appendix B's R̄ is "R with the roles of the constraints reversed";
        this helper expresses that reversal.
        """
        return Problem(
            alphabet=self.alphabet,
            white=self.black,
            black=self.white,
            name=f"swap({self.name})",
        )

    def rename(self, mapping: dict[Label, Label], name: str | None = None) -> "Problem":
        """Apply an injective label renaming."""
        image = [mapping.get(label, label) for label in self.alphabet]
        if len(set(image)) != len(image):
            raise FormalismError(f"renaming {mapping} is not injective on Σ")
        return Problem(
            alphabet=frozenset(image),
            white=self.white.map_labels(mapping),
            black=self.black.map_labels(mapping),
            name=name or self.name,
        )

    def restrict_to_used_labels(self) -> "Problem":
        """Drop alphabet labels that appear in no configuration."""
        used = self.white.labels | self.black.labels
        return Problem(
            alphabet=used, white=self.white, black=self.black, name=self.name
        )

    def same_constraints(self, other: "Problem") -> bool:
        """Literal equality of constraints (labels compared as strings)."""
        return self.white == other.white and self.black == other.black

    def _label_signature(self, label: Label) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Renaming-invariant usage signature of a label (for isomorphism)."""
        return (
            self.white.label_occurrence_signature(label),
            self.black.label_occurrence_signature(label),
        )

    def find_isomorphism(self, other: "Problem") -> dict[Label, Label] | None:
        """Search for a label bijection turning ``self`` into ``other``.

        Returns the bijection or None.  Candidates are pruned by usage
        signatures, then validated by backtracking; complete (no false
        negatives) because signatures are renaming-invariant.
        """
        if len(self.alphabet) != len(other.alphabet):
            return None
        if (self.white_arity, self.black_arity) != (
            other.white_arity,
            other.black_arity,
        ):
            return None
        if (len(self.white), len(self.black)) != (len(other.white), len(other.black)):
            return None

        own_signatures = {label: self._label_signature(label) for label in self.alphabet}
        other_signatures: dict[tuple, list[Label]] = {}
        for label in other.alphabet:
            other_signatures.setdefault(other._label_signature(label), []).append(label)

        candidates: dict[Label, list[Label]] = {}
        for label, signature in own_signatures.items():
            matches = other_signatures.get(signature)
            if not matches:
                return None
            candidates[label] = matches

        # Assign scarce labels first.
        order = sorted(self.alphabet, key=lambda lab: len(candidates[lab]))

        def backtrack(index: int, mapping: dict[Label, Label], used: set[Label]):
            if index == len(order):
                renamed = self.rename(mapping)
                if renamed.same_constraints(other):
                    return dict(mapping)
                return None
            label = order[index]
            for target in candidates[label]:
                if target in used:
                    continue
                mapping[label] = target
                used.add(target)
                found = backtrack(index + 1, mapping, used)
                if found is not None:
                    return found
                del mapping[label]
                used.discard(target)
            return None

        return backtrack(0, {}, set())

    def is_isomorphic_to(self, other: "Problem") -> bool:
        """True if some label renaming makes the problems equal."""
        return self.find_isomorphism(other) is not None

    def describe(self) -> str:
        """Multi-line human-readable description (used by examples)."""
        lines = [
            f"Problem {self.name}",
            f"  alphabet: {{{', '.join(sorted(self.alphabet))}}}",
            f"  white constraint (arity {self.white_arity}):",
        ]
        lines.extend(f"    {config}" for config in self.white)
        lines.append(f"  black constraint (arity {self.black_arity}):")
        lines.extend(f"    {config}" for config in self.black)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def iter_configurations(problem: Problem) -> Iterator[tuple[str, Configuration]]:
    """Yield ("white"|"black", configuration) pairs of a problem."""
    for config in problem.white:
        yield "white", config
    for config in problem.black:
        yield "black", config


def problem_from_lines(
    white_lines: Iterable[str] | str,
    black_lines: Iterable[str] | str,
    name: str = "Π",
) -> Problem:
    """Build a problem from constraint text (see :mod:`.parsing`)."""
    from repro.formalism.parsing import parse_constraint

    def as_text(lines: Iterable[str] | str) -> str:
        if isinstance(lines, str):
            return lines
        return "\n".join(lines)

    return Problem.from_constraints(
        white=parse_constraint(as_text(white_lines)),
        black=parse_constraint(as_text(black_lines)),
        name=name,
    )
