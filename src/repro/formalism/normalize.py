"""Canonical normal forms of problems under label renaming.

Two problems that differ only in label *spelling* — ``Π`` and
``Π.rename(σ)`` for a bijection σ, or the same constraints written with
their configuration lines in a different order — are the same
mathematical object, and the exploration engine
(:mod:`repro.roundelim.explore`) must treat them as one search node.
This module computes a *canonical form*: a deterministic renaming of the
alphabet to ``x0, x1, …`` derived purely from constraint structure, so

* ``normal_form(p).digest == normal_form(p.rename(σ)).digest`` for every
  label bijection σ, and
* two problems share a digest **iff** they are isomorphic (the canonical
  form is complete: it minimizes over all structure-respecting orders).

The algorithm is the classic refine-then-minimize scheme:

1. partition labels by renaming-invariant *signatures* (per-constraint
   occurrence-multiplicity vectors, :meth:`Constraint.label_occurrence_signature`);
2. refine the partition with co-occurrence profiles (which classes a
   label appears next to, with multiplicities) until it stabilizes —
   ordinary color refinement on the configuration hypergraph;
3. among all total orders that respect the refined class order, pick the
   one whose integer encoding of the constraints is lexicographically
   minimal.  Classes are almost always singletons after refinement, so
   the minimization usually inspects exactly one order; a budget guards
   the symmetric worst case.

The canonical *payload* (plain JSON: arities, alphabet size, constraint
index matrices) is what the content-addressed store hashes; the
canonical :class:`Problem` is rebuilt from that payload, so any two
isomorphic inputs produce byte-identical payloads, digests and problems.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product
from math import factorial

from repro.formalism.configurations import Configuration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.problems import Problem
from repro.utils import SolverLimitError
from repro.utils.serialization import result_digest

#: Schema tag embedded in every canonical payload (hash-relevant: bump it
#: and every digest changes, which is the intended cache invalidation).
NORMAL_FORM_SCHEMA = "repro.normalize/v1"

#: Digest length (hex chars) for canonical problem identities.  Longer
#: than the 16-char result digests used for payload fingerprints: the
#: store treats digest equality as problem identity, so collisions must
#: be out of reach (128 bits here).
DIGEST_LENGTH = 32

#: Cap on the number of class-respecting label orders the minimization
#: may inspect.  Refinement leaves symmetric orbits only for genuinely
#: label-transitive problems; 8! bounds the worst case we accept before
#: raising instead of stalling.
PERMUTATION_LIMIT = 40_320


def canonical_label(index: int) -> Label:
    """The canonical spelling of the label with canonical index ``index``."""
    return f"x{index}"


def _signature_key(problem: Problem, label: Label) -> tuple:
    return (
        problem.white.label_occurrence_signature(label),
        problem.black.label_occurrence_signature(label),
    )


def _cooccurrence_profile(
    constraint: Constraint, label: Label, class_of: dict[Label, int]
) -> tuple:
    """Which classes ``label`` co-occurs with, per configuration.

    For every configuration containing the label: its own multiplicity
    plus the sorted (class, count) census of the whole configuration.
    Invariant under renaming because it only mentions class indices.
    """
    entries = []
    for config in constraint.configurations:
        own = config.count(label)
        if own == 0:
            continue
        census: dict[int, int] = {}
        for member, count in config.counter.items():
            cls = class_of[member]
            census[cls] = census.get(cls, 0) + count
        entries.append((own, tuple(sorted(census.items()))))
    return tuple(sorted(entries))


def _refined_classes(problem: Problem) -> list[list[Label]]:
    """Stable partition of the alphabet into renaming-invariant classes.

    Classes come back ordered by their invariant key and internally
    sorted (the internal order is arbitrary — the minimization below is
    what breaks remaining ties).
    """
    labels = sorted(problem.alphabet)
    key: dict[Label, tuple] = {
        label: _signature_key(problem, label) for label in labels
    }
    while True:
        distinct = sorted(set(key.values()))
        index = {value: position for position, value in enumerate(distinct)}
        class_of = {label: index[key[label]] for label in labels}
        refined = {
            label: (
                class_of[label],
                _cooccurrence_profile(problem.white, label, class_of),
                _cooccurrence_profile(problem.black, label, class_of),
            )
            for label in labels
        }
        if len(set(refined.values())) == len(distinct):
            groups: dict[int, list[Label]] = {}
            for label in labels:
                groups.setdefault(class_of[label], []).append(label)
            return [groups[position] for position in sorted(groups)]
        key = refined


def _constraint_encoding(
    constraint: Constraint, index_of: dict[Label, int]
) -> tuple[tuple[int, ...], ...]:
    """The constraint as a sorted matrix of canonical label indices."""
    return tuple(
        sorted(
            tuple(sorted(index_of[label] for label in config.labels))
            for config in constraint.configurations
        )
    )


def _minimal_order(
    problem: Problem, classes: list[list[Label]]
) -> tuple[list[Label], tuple, tuple]:
    """The class-respecting label order with the smallest encoding.

    Returns (order, white encoding, black encoding).  Any two orders
    achieving the minimum yield the *same* canonical problem (the
    problem is rebuilt from the encoding, not from the order), so ties
    are harmless.
    """
    total = 1
    for group in classes:
        total *= factorial(len(group))
        if total > PERMUTATION_LIMIT:
            raise SolverLimitError(
                f"canonicalization would inspect {total}+ label orders "
                f"(limit {PERMUTATION_LIMIT}); the problem is too symmetric"
            )
    best: tuple | None = None
    best_order: list[Label] | None = None
    for combo in product(*(permutations(group) for group in classes)):
        order = [label for group in combo for label in group]
        index_of = {label: position for position, label in enumerate(order)}
        encoding = (
            _constraint_encoding(problem.white, index_of),
            _constraint_encoding(problem.black, index_of),
        )
        if best is None or encoding < best:
            best = encoding
            best_order = order
    assert best is not None and best_order is not None
    return best_order, best[0], best[1]


def label_automorphisms(
    problem: Problem, limit: int = PERMUTATION_LIMIT
) -> list[dict[Label, Label]] | None:
    """The full label-automorphism group of a problem, identity first.

    An automorphism is a bijection σ of the alphabet with
    ``problem.rename(σ) == problem`` (both constraints preserved as
    sets).  Candidates are enumerated per refined class — automorphisms
    must respect the renaming-invariant partition of
    :func:`_refined_classes`, so the search space is the product of
    within-class permutations, and checking every candidate makes the
    returned group *complete*.  The SAT backend turns non-identity
    elements into lex-leader symmetry-breaking clauses and re-expands
    enumerated solutions along the group's orbits.

    Returns ``None`` when the candidate count exceeds ``limit`` (the
    caller falls back to identity-only, i.e. no breaking) — the same
    too-symmetric envelope :func:`normal_form` guards with
    ``PERMUTATION_LIMIT``.
    """
    classes = _refined_classes(problem)
    total = 1
    for group in classes:
        total *= factorial(len(group))
        if total > limit:
            return None
    white = problem.white.configurations
    black = problem.black.configurations
    found: list[dict[Label, Label]] = []
    for combo in product(*(permutations(group) for group in classes)):
        mapping = {
            source: target
            for group, targets in zip(classes, combo)
            for source, target in zip(group, targets)
        }
        if all(
            config.map_labels(mapping) in white for config in white
        ) and all(config.map_labels(mapping) in black for config in black):
            found.append(mapping)
    # Identity first, then a deterministic order over the rest.
    found.sort(key=lambda m: sorted(m.items()))
    identity = {label: label for label in problem.alphabet}
    found.remove(identity)
    return [identity, *found]


@dataclass(frozen=True)
class NormalForm:
    """The canonical form of a problem: payload, digest, problem, witness."""

    payload: dict
    digest: str
    problem: Problem
    mapping: dict[Label, Label]  # original label -> canonical label


def canonical_payload_of_parts(
    alphabet_size: int,
    white_arity: int,
    black_arity: int,
    white: tuple[tuple[int, ...], ...],
    black: tuple[tuple[int, ...], ...],
) -> dict:
    """Assemble the hashable canonical payload from encoded parts."""
    return {
        "schema": NORMAL_FORM_SCHEMA,
        "alphabet_size": alphabet_size,
        "white_arity": white_arity,
        "black_arity": black_arity,
        "white": [list(config) for config in white],
        "black": [list(config) for config in black],
    }


def normal_form(problem: Problem, name: str | None = None) -> NormalForm:
    """Compute the canonical form of ``problem``.

    The returned problem uses labels ``x0 … x{n-1}``; its constraints
    are rebuilt from the minimal encoding so isomorphic inputs map to
    the *identical* object.  ``mapping`` witnesses the renaming.
    """
    classes = _refined_classes(problem)
    order, white_enc, black_enc = _minimal_order(problem, classes)
    mapping = {
        label: canonical_label(position) for position, label in enumerate(order)
    }
    payload = canonical_payload_of_parts(
        alphabet_size=len(problem.alphabet),
        white_arity=problem.white_arity,
        black_arity=problem.black_arity,
        white=white_enc,
        black=black_enc,
    )
    canonical = problem_from_payload(payload, name=name or problem.name)
    return NormalForm(
        payload=payload,
        digest=result_digest(payload, length=DIGEST_LENGTH),
        problem=canonical,
        mapping=mapping,
    )


def canonical_digest(problem: Problem) -> str:
    """The content address of a problem (shared by all its renamings)."""
    return normal_form(problem).digest


def problem_from_payload(payload: dict, name: str = "Π") -> Problem:
    """Rebuild the canonical :class:`Problem` a payload describes."""
    alphabet = frozenset(
        canonical_label(index) for index in range(payload["alphabet_size"])
    )
    white = Constraint(
        Configuration(canonical_label(index) for index in config)
        for config in payload["white"]
    )
    black = Constraint(
        Configuration(canonical_label(index) for index in config)
        for config in payload["black"]
    )
    return Problem(alphabet=alphabet, white=white, black=black, name=name)
