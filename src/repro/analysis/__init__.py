"""Executable versions of the paper's proof steps."""

from repro.analysis.coloring_extraction import (
    extract_coloring,
    palette_size,
    x_graph,
)
from repro.analysis.counting import (
    MatchingCountingCertificate,
    classify_matching_nodes,
    contradiction_region,
    count_label_edges,
    matching_counting_certificate,
)
from repro.analysis.hall_extraction import (
    decode_color_union,
    extract_family_solution,
    hall_violator,
)
from repro.analysis.ruling_peeling import (
    BarPiChecker,
    PeelResult,
    classify_types,
    peel_once,
    type1_fraction_certificate,
)

__all__ = [
    "BarPiChecker",
    "MatchingCountingCertificate",
    "PeelResult",
    "classify_matching_nodes",
    "classify_types",
    "contradiction_region",
    "count_label_edges",
    "decode_color_union",
    "extract_coloring",
    "extract_family_solution",
    "hall_violator",
    "matching_counting_certificate",
    "palette_size",
    "peel_once",
    "type1_fraction_certificate",
    "x_graph",
]
