"""Lemma 5.10, executable: Π_Δ(k) S-solutions → proper 2k-colorings.

The lemma's proof constructs, from an S-solution of Π_Δ(k) (each node v
holding a configuration ℓ(C_v)^{Δ−x_v} X^{x_v}):

1. the graph G_X: S-induced edges labeled X on at least one side (edges
   with two ℓ labels already have disjoint color sets);
2. a degeneracy-style ordering: repeatedly pick a node whose remaining
   G_X-degree is ≤ 2|C_v| − 1 (the proof's counting argument shows one
   always exists: |E(G_X restricted)| ≤ Σ(|C_v|−1));
3. reverse-greedy coloring from the doubled palette
   C′_v = {(c, 1), (c, 2) : c ∈ C_v}: each node has more colors available
   than colored G_X-neighbors.

Colors are reported as pairs (c, copy) with copy ∈ {1, 2} — the "2k"
palette; the result is validated to be a proper coloring of the S-induced
subgraph by the caller (and by this module's own assertion).
"""

from __future__ import annotations

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.labels import color_label_members, is_set_label
from repro.utils import CertificateError


def node_color_set(
    graph: nx.Graph, node, labels: dict[tuple, Label]
) -> frozenset[int]:
    """C_v: the color set of v's ℓ(C_v) labels (must be consistent)."""
    sets = {
        color_label_members(labels[(node, neighbor)])
        for neighbor in graph.neighbors(node)
        if labels[(node, neighbor)] != "X" and is_set_label(labels[(node, neighbor)])
    }
    if len(sets) != 1:
        raise CertificateError(
            f"node {node!r} uses {len(sets)} distinct ℓ(C) labels; an "
            f"S-solution configuration uses exactly one"
        )
    return next(iter(sets))


def x_graph(
    graph: nx.Graph, s_nodes: set, labels: dict[tuple, Label]
) -> nx.Graph:
    """G_X: S-induced edges carrying X on at least one side."""
    result = nx.Graph()
    result.add_nodes_from(node for node in graph.nodes if node in s_nodes)
    for u, v in graph.edges:
        if u not in s_nodes or v not in s_nodes:
            continue
        if labels[(u, v)] == "X" or labels[(v, u)] == "X":
            result.add_edge(u, v)
    return result


def elimination_ordering(
    gx: nx.Graph, color_sets: dict
) -> list:
    """The proof's ordering: v_i has ≤ 2|C_{v_i}|−1 neighbors among later
    nodes.  Raises if none exists — which the proof's counting argument
    rules out for genuine S-solutions."""
    remaining = nx.Graph(gx)
    ordering: list = []
    while remaining.number_of_nodes():
        chosen = None
        for node in sorted(remaining.nodes, key=str):
            if remaining.degree(node) <= 2 * len(color_sets[node]) - 1:
                chosen = node
                break
        if chosen is None:
            raise CertificateError(
                "no node satisfies the degree bound — the input is not a "
                "valid Π_Δ(k) S-solution (Lemma 5.10's counting argument)"
            )
        ordering.append(chosen)
        remaining.remove_node(chosen)
    return ordering


def extract_coloring(
    graph: nx.Graph, s_nodes: set, labels: dict[tuple, Label]
) -> dict:
    """Run the Lemma 5.10 construction; returns {node: (color, copy)}.

    The palette has 2k colors when the solution uses k base colors.  The
    produced coloring is verified proper on the S-induced subgraph before
    being returned.
    """
    color_sets = {
        node: node_color_set(graph, node, labels)
        for node in s_nodes
    }
    gx = x_graph(graph, s_nodes, labels)
    ordering = elimination_ordering(gx, color_sets)

    assignment: dict = {}
    for node in reversed(ordering):
        palette = [
            (color, copy) for color in sorted(color_sets[node]) for copy in (1, 2)
        ]
        used = {
            assignment[neighbor]
            for neighbor in gx.neighbors(node)
            if neighbor in assignment
        }
        free = [color for color in palette if color not in used]
        if not free:
            raise CertificateError(
                f"node {node!r} ran out of colors — impossible for a valid "
                f"S-solution (it has ≤ 2|C|−1 colored G_X neighbors)"
            )
        assignment[node] = free[0]

    induced = graph.subgraph(s_nodes)
    for u, v in induced.edges:
        if assignment[u] == assignment[v]:
            raise CertificateError(
                f"extraction produced a monochromatic edge {(u, v)} — the "
                f"input was not a valid S-solution"
            )
    return assignment


def palette_size(assignment: dict) -> int:
    """Number of distinct (color, copy) pairs used — compared to 2k."""
    return len(set(assignment.values()))
