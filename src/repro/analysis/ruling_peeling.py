"""Lemma 6.6, executable: one peeling step of the §6 ruling-set argument.

The lemma transforms an S-solution of ¯Π_{Δ′,x}(k,β) — whose node
constraint allows each node to satisfy lift_{Δ,2}(Π_{Δ′−y}(k,β)) for some
y ∈ {0..x} — into an S′-solution of ¯Π_{Δ′,x+1}(2k, β−1) with
|S′| ≥ |S|/4, eliminating the deepest pointer labels P_β, U_β.  Node
types, exactly as in the proof:

* type 3 — some incident label-set lacks U_β: drop P_β/U_β, lose at most
  one unit of effective degree;
* type 1 — all label-sets contain U_β and ≥ Δ−Δ′ of them contain P_β:
  removed from S (the counting argument bounds them by 3|S|/4);
* type 2 — all label-sets contain U_β, < Δ−Δ′ contain P_β: relabelled
  with color sets shifted by k (the fresh palette {k+1..2k}) plus X.

The module provides the classifier, the per-step transformation, the
|S′| ≥ |S|/4 certificate, and a checker for ¯Π solutions at any (x, k, β).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations, product

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.labels import color_label, color_label_members, is_set_label
from repro.formalism.problems import Problem
from repro.problems.ruling_sets import pi_ruling, pointer_label, unpointed_label
from repro.utils import CertificateError


@dataclass(frozen=True)
class BarPiChecker:
    """Validity of ¯Π_{Δ′,x}(k,β) S-solutions (label-sets on half-edges)."""

    delta_prime: int
    x: int
    k: int
    beta: int

    def _family_problem(self, y: int) -> Problem:
        return pi_ruling(self.delta_prime - y, self.k, self.beta)

    def node_ok(self, label_sets: list[frozenset[Label]]) -> bool:
        """∃ y ∈ {0..x}: every (Δ′−y)-subset admits a white-constraint
        choice of Π_{Δ′−y}(k,β) — the lift node condition."""
        for y in range(self.x + 1):
            arity = self.delta_prime - y
            if arity < 1 or arity > len(label_sets):
                continue
            problem = self._family_problem(y)
            if all(
                _exists_choice(subset, problem)
                for subset in combinations(label_sets, arity)
            ):
                return True
        return False

    def edge_ok(
        self, first: frozenset[Label], second: frozenset[Label]
    ) -> bool:
        """Every choice across the pair is in the family's edge constraint
        (which is independent of Δ′−y)."""
        problem = self._family_problem(0)
        return all(
            problem.black.allows_multiset(choice)
            for choice in product(first, second)
        )

    def check(
        self,
        graph: nx.Graph,
        s_nodes: set,
        assignment: dict[tuple, frozenset[Label]],
    ) -> bool:
        for node in s_nodes:
            sets = [
                assignment[(node, neighbor)] for neighbor in graph.neighbors(node)
            ]
            if not self.node_ok(sets):
                return False
        for u, v in graph.edges:
            if u in s_nodes and v in s_nodes:
                if not self.edge_ok(assignment[(u, v)], assignment[(v, u)]):
                    return False
        return True


def _exists_choice(slots: tuple[frozenset[Label], ...], problem: Problem) -> bool:
    ordered = sorted(slots, key=len)

    def recurse(index: int, partial: Counter[Label]) -> bool:
        if index == len(ordered):
            return problem.white.allows_multiset(partial.elements())
        for label in sorted(ordered[index]):
            partial[label] += 1
            if problem.white.allows_partial(partial, index + 1) and recurse(
                index + 1, partial
            ):
                partial[label] -= 1
                return True
            partial[label] -= 1
            if partial[label] == 0:
                del partial[label]
        return False

    return recurse(0, Counter())


def classify_types(
    graph: nx.Graph,
    s_nodes: set,
    assignment: dict[tuple, frozenset[Label]],
    delta: int,
    delta_prime: int,
    beta: int,
) -> tuple[set, set, set, set]:
    """Split S into (type1, type2, type3, untouched) per the proof.

    ``untouched`` nodes have no P_β/U_β anywhere and keep their labels.
    """
    p_beta = pointer_label(beta)
    u_beta = unpointed_label(beta)
    type1: set = set()
    type2: set = set()
    type3: set = set()
    untouched: set = set()
    for node in s_nodes:
        sets = [assignment[(node, neighbor)] for neighbor in graph.neighbors(node)]
        touches = any(p_beta in s or u_beta in s for s in sets)
        if not touches:
            untouched.add(node)
            continue
        if any(u_beta not in s for s in sets):
            type3.add(node)
            continue
        p_count = sum(1 for s in sets if p_beta in s)
        if p_count >= delta - delta_prime:
            type1.add(node)
        else:
            type2.add(node)
    return type1, type2, type3, untouched


def type1_fraction_certificate(
    s_size: int, type1_size: int, delta: int, delta_prime: int
) -> bool:
    """The proof's bound: with Δ ≥ 3Δ′, type-1 nodes ≤ |S|·Δ/(2(Δ−Δ′))
    ≤ 3|S|/4 — verify both inequalities numerically."""
    if delta < 3 * delta_prime:
        raise CertificateError(
            f"the Lemma 6.6 counting needs Δ ≥ 3Δ′ (got Δ={delta}, Δ′={delta_prime})"
        )
    bound = s_size * delta / (2 * (delta - delta_prime))
    return type1_size <= bound and bound <= 3 * s_size / 4 + 1e-9


@dataclass(frozen=True)
class PeelResult:
    """Outcome of one Lemma 6.6 application."""

    s_prime: set
    assignment: dict
    type1: set
    type2: set
    type3: set
    fraction_ok: bool


def peel_once(
    graph: nx.Graph,
    s_nodes: set,
    assignment: dict[tuple, frozenset[Label]],
    delta: int,
    delta_prime: int,
    k: int,
    beta: int,
) -> PeelResult:
    """Apply the Lemma 6.6 transformation once (β → β−1, k → 2k).

    Label-sets of type-2 nodes are rebuilt from the fresh color palette
    {k+1..2k} plus X; every other surviving node just drops P_β/U_β from
    its sets.  The caller re-checks the result with a
    :class:`BarPiChecker` at (x+1, 2k, β−1) — that check *is* the lemma's
    conclusion.
    """
    if beta < 1:
        raise CertificateError("peeling needs β ≥ 1")
    p_beta = pointer_label(beta)
    u_beta = unpointed_label(beta)
    type1, type2, type3, untouched = classify_types(
        graph, s_nodes, assignment, delta, delta_prime, beta
    )
    s_prime = (s_nodes - type1)
    fraction_ok = type1_fraction_certificate(
        len(s_nodes), len(type1), delta, delta_prime
    )

    new_assignment: dict[tuple, frozenset[Label]] = dict(assignment)
    drop = {p_beta, u_beta}
    for node in type3 | untouched:
        for neighbor in graph.neighbors(node):
            new_assignment[(node, neighbor)] = (
                assignment[(node, neighbor)] - drop
            )
    for node in type2:
        shifted = _shifted_union(graph, node, assignment, k)
        for neighbor in graph.neighbors(node):
            original = assignment[(node, neighbor)]
            if p_beta in original:
                # P-edges get the union of all the new U-edge sets.
                new_assignment[(node, neighbor)] = shifted | {"X"}
            else:
                new_assignment[(node, neighbor)] = (
                    _shift_colors(original, k) | {"X"}
                )
    return PeelResult(
        s_prime=s_prime,
        assignment=new_assignment,
        type1=type1,
        type2=type2,
        type3=type3,
        fraction_ok=fraction_ok,
    )


def _shift_colors(label_set: frozenset[Label], k: int) -> frozenset[Label]:
    """{ℓ({c+k : c ∈ C}) : ℓ(C) ∈ L} — the proof's palette shift,
    discarding P_i/U_i/X labels."""
    shifted: set[Label] = set()
    for label in label_set:
        if label == "X" or not is_set_label(label):
            continue
        colors = color_label_members(label)
        shifted.add(color_label({color + k for color in colors}))
    return frozenset(shifted)


def _shifted_union(
    graph: nx.Graph, node, assignment: dict, k: int
) -> frozenset[Label]:
    """Union of the shifted label-sets over the node's U-edges."""
    union: set[Label] = set()
    for neighbor in graph.neighbors(node):
        union |= _shift_colors(assignment[(node, neighbor)], k)
    return frozenset(union)
