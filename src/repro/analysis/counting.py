"""The §4.2 counting certificates (Lemmas 4.7, 4.8, 4.9).

Theorem 4.1's unsolvability proof is a counting contradiction about *any*
hypothetical solution of ¯Π = lift_{Δ,Δ}(Π_Δ′(x′,y)) on a (Δ,Δ)-biregular
2-colored graph with 2n nodes:

* Lemma 4.7 — at most n·y edges carry label-sets containing M;
* Lemma 4.8 — at least n((Δ−Δ′)/2 − y) edges carry label-sets containing P;
* Lemma 4.9 — at most n(Δ′−1) edges carry label-sets containing P;

and for Δ ≥ 5Δ′ the last two collide.  This module makes each count and
each bound executable: given any label-set assignment, it computes the
counts, checks each lemma's inequality, and reports whether the
contradiction region is reached.  On real lift solutions (which exist only
outside the lower-bound regime) all three inequalities are verified to
hold; inside the regime the CSP solver's unsat answer and the closed-form
contradiction check corroborate each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.formalism.configurations import Label
from repro.utils import CertificateError


@dataclass(frozen=True)
class MatchingCountingCertificate:
    """Counts and lemma checks for one label-set assignment."""

    n_half: int  # the paper's n (graph has 2n nodes)
    delta: int
    delta_prime: int
    y: int
    m_edges: int
    p_edges: int
    lemma_47_bound: float
    lemma_48_bound: float
    lemma_49_bound: float

    @property
    def lemma_47_holds(self) -> bool:
        """M-edges ≤ n·y."""
        return self.m_edges <= self.lemma_47_bound

    @property
    def lemma_48_holds(self) -> bool:
        """P-edges ≥ n((Δ−Δ′)/2 − y)."""
        return self.p_edges >= self.lemma_48_bound

    @property
    def lemma_49_holds(self) -> bool:
        """P-edges ≤ n(Δ′−1)."""
        return self.p_edges <= self.lemma_49_bound

    @property
    def bounds_contradict(self) -> bool:
        """Is the 4.8 lower bound above the 4.9 upper bound?

        When true, *no* assignment can satisfy both, i.e. no lift solution
        exists — the §4.2 conclusion.
        """
        return self.lemma_48_bound > self.lemma_49_bound


def count_label_edges(
    assignment: dict[frozenset, frozenset[Label]], label: Label
) -> int:
    """Number of edges whose label-set contains ``label``."""
    return sum(1 for label_set in assignment.values() if label in label_set)


def matching_counting_certificate(
    graph: nx.Graph,
    assignment: dict[frozenset, frozenset[Label]],
    delta: int,
    delta_prime: int,
    y: int,
) -> MatchingCountingCertificate:
    """Evaluate the three lemmas on a concrete label-set assignment.

    ``graph`` must be (Δ,Δ)-biregular with an even node count 2n; the
    assignment maps each edge to a set of Π_Δ′(x′,y) labels.
    """
    nodes = graph.number_of_nodes()
    if nodes % 2 != 0:
        raise CertificateError(f"graph has odd node count {nodes}; need 2n")
    n_half = nodes // 2
    missing = [edge for edge in graph.edges if frozenset(edge) not in assignment]
    if missing:
        raise CertificateError(f"assignment misses edges, e.g. {missing[0]}")

    return MatchingCountingCertificate(
        n_half=n_half,
        delta=delta,
        delta_prime=delta_prime,
        y=y,
        m_edges=count_label_edges(assignment, "M"),
        p_edges=count_label_edges(assignment, "P"),
        lemma_47_bound=n_half * y,
        lemma_48_bound=n_half * ((delta - delta_prime) / 2 - y),
        lemma_49_bound=n_half * (delta_prime - 1),
    )


def contradiction_region(delta: int, delta_prime: int, y: int) -> bool:
    """The closed-form §4.2 contradiction check: (Δ−Δ′)/2 − y > Δ′ − 1.

    The paper fixes c = 5 (Δ = 5Δ′) and shows n(2Δ′ − y) ≥ nΔ′ > n(Δ′−1);
    this predicate is the exact inequality behind that computation.
    """
    return (delta - delta_prime) / 2 - y > delta_prime - 1


def classify_matching_nodes(
    graph: nx.Graph,
    assignment: dict[frozenset, frozenset[Label]],
    delta: int,
    delta_prime: int,
) -> tuple[set, set]:
    """Lemma 4.8's split of white nodes into M-nodes and P-nodes.

    An *M-node* has ≥ (Δ−Δ′)/2 incident edges whose label-sets contain M;
    the others are *P-nodes*.  Only meaningful for the bipartite white
    side; callers pass the appropriate node subset via graph attributes
    (color = "white").
    """
    threshold = (delta - delta_prime) / 2
    m_nodes: set = set()
    p_nodes: set = set()
    for node, data in graph.nodes(data=True):
        if data.get("color") != "white":
            continue
        m_count = sum(
            1
            for neighbor in graph.neighbors(node)
            if "M" in assignment[frozenset((node, neighbor))]
        )
        if m_count >= threshold:
            m_nodes.add(node)
        else:
            p_nodes.add(node)
    return m_nodes, p_nodes
