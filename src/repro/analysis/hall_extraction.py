"""Lemma 5.9, executable: lift solutions → Π_Δ(k) S-solutions via Hall.

Given an S-solution of Π′ = lift_{Δ,2}(Π_Δ′(k)) on a Δ-regular graph
(label-sets on half-edges), the lemma converts it into an S-solution of
Π_Δ(k).  The proof — reproduced here step by step — runs, per node v:

1. decode C_e(v) := ∪_{ℓ(C) ∈ L_e(v)} C, the colors an edge's label-set
   can still carry (disjoint across the two sides of an edge, by the lift
   black condition);
2. build the bipartite graph H: colors {1..k} vs v's Δ edges, with
   (color i, edge e) adjacent iff i ∉ C_e(v);
3. a perfect matching on the color side would contradict the lift white
   condition (the proof's Hall argument), so a Hall violator C with
   |C| ≥ |N(C)| + 1 exists — found here through König's theorem;
4. assign v the configuration ℓ(C)^{Δ−x} X^x with x = |C|−1: at most
   |C|−1 edges miss a color of C, so the X budget suffices.
"""

from __future__ import annotations

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.labels import color_label, color_label_members, is_set_label
from repro.utils import CertificateError


def decode_color_union(label_set: frozenset[Label]) -> frozenset[int]:
    """C_e(v): the union of color sets over the ℓ(C) members of L_e(v)."""
    colors: set[int] = set()
    for label in label_set:
        if label == "X" or not is_set_label(label):
            continue
        colors.update(color_label_members(label))
    return frozenset(colors)


def hall_violator(
    colors: range, edge_color_sets: list[frozenset[int]]
) -> set[int] | None:
    """A set C of colors with |C| > |N(C)|, or None if Hall's condition
    holds (N(C) = edges *not* carrying all of C, per the lemma's H).

    H has an edge (i, j) iff color i ∉ edge_color_sets[j]; we look for a
    violator of Hall's condition on the color side via maximum matching
    and König-style alternating reachability.
    """
    graph = nx.Graph()
    color_nodes = [("color", i) for i in colors]
    edge_nodes = [("edge", j) for j in range(len(edge_color_sets))]
    graph.add_nodes_from(color_nodes, bipartite=0)
    graph.add_nodes_from(edge_nodes, bipartite=1)
    for i in colors:
        for j, color_set in enumerate(edge_color_sets):
            if i not in color_set:
                graph.add_edge(("color", i), ("edge", j))

    matching = nx.algorithms.bipartite.maximum_matching(
        graph, top_nodes=color_nodes
    )
    saturated = [node for node in color_nodes if node in matching]
    if len(saturated) == len(color_nodes):
        return None

    # Alternating BFS from unsaturated colors: color → edge via
    # non-matching edges, edge → color via matching edges.
    reachable_colors = {
        node for node in color_nodes if node not in matching
    }
    reachable_edges: set = set()
    frontier = set(reachable_colors)
    while frontier:
        next_frontier: set = set()
        for color_node in frontier:
            for edge_node in graph.neighbors(color_node):
                if matching.get(color_node) == edge_node:
                    continue
                if edge_node in reachable_edges:
                    continue
                reachable_edges.add(edge_node)
                matched_back = matching.get(edge_node)
                if matched_back is not None and matched_back not in reachable_colors:
                    reachable_colors.add(matched_back)
                    next_frontier.add(matched_back)
        frontier = next_frontier

    violator = {node[1] for node in reachable_colors}
    neighborhood = {
        neighbor[1]
        for color_node in reachable_colors
        for neighbor in graph.neighbors(color_node)
    }
    if len(violator) <= len(neighborhood):
        raise CertificateError(
            "König reachability failed to produce a Hall violator"
        )
    return violator


def extract_family_solution(
    graph: nx.Graph,
    s_nodes: set,
    half_edge_sets: dict[tuple, frozenset[Label]],
    k: int,
) -> dict[tuple, Label]:
    """Run the Lemma 5.9 conversion; returns Π_Δ(k) half-edge labels on S.

    ``half_edge_sets[(v, u)]`` is L_e(v) for the edge e = {v,u}.  Raises
    :class:`CertificateError` if the input violates the lift conditions it
    relies on (disjointness across edges, white condition).
    """
    # Disjointness across each in-S edge (the lemma's first observation).
    for u, v in graph.edges:
        if u not in s_nodes or v not in s_nodes:
            continue
        cu = decode_color_union(half_edge_sets[(u, v)])
        cv = decode_color_union(half_edge_sets[(v, u)])
        if cu & cv:
            raise CertificateError(
                f"edge {(u, v)}: C_e(u) ∩ C_e(v) = {sorted(cu & cv)} ≠ ∅ — "
                f"not a lift solution"
            )

    result: dict[tuple, Label] = {}
    for node in sorted(s_nodes, key=str):
        neighbors = sorted(graph.neighbors(node), key=str)
        color_sets = [
            decode_color_union(half_edge_sets[(node, neighbor)])
            for neighbor in neighbors
        ]
        violator = hall_violator(range(1, k + 1), color_sets)
        if violator is None:
            raise CertificateError(
                f"node {node!r}: Hall's condition holds, contradicting the "
                f"lift white condition (Lemma 5.9's impossibility step)"
            )
        x_budget = len(violator) - 1
        chosen = color_label(violator)
        missing = [
            index
            for index, color_set in enumerate(color_sets)
            if not violator <= color_set
        ]
        if len(missing) > x_budget:
            raise CertificateError(
                f"node {node!r}: {len(missing)} edges miss colors of the "
                f"violator but only {x_budget} X's are available"
            )
        # Pad the X set deterministically to exactly x = |C|−1 edges.
        x_indices = set(missing)
        for index in range(len(neighbors)):
            if len(x_indices) == x_budget:
                break
            x_indices.add(index)
        for index, neighbor in enumerate(neighbors):
            result[(node, neighbor)] = "X" if index in x_indices else chosen
    return result
