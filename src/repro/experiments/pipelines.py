"""Measurement pipelines: the bodies behind scenario `pipeline` keys.

Each pipeline takes a resolved :class:`~repro.experiments.scenarios.Scenario`
plus that scenario's private RNG and returns a list of *records* — plain
dicts of deterministic, JSON-ready observations.  Everything the old
``benchmarks/bench_*.py`` scripts hand-rolled (graph generation, input
subgraph construction, round measurement, checker invocation, paper-bound
arithmetic) lives here once, so benchmarks, examples, the CLI and CI all
exercise the same code paths.

Determinism contract: a record may depend only on the scenario definition
and the supplied RNG — never on wall-clock, process identity or execution
order.  Wall-clock timing is measured by the runner *around* a pipeline
(see :func:`repro.local.measurement.timed`), kept out of the records so
serial and parallel runs serialize identically.

Algorithm execution goes through the :func:`repro.api.solve` façade, so
every scenario runs on the engine backend its :class:`Scenario` names
(``scenario.engine``, the ``--engine`` dimension) — and, by the engine
contract, produces identical records on all of them.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Callable

import networkx as nx

from repro.api import solve
from repro.analysis import (
    classify_types,
    extract_coloring,
    extract_family_solution,
    palette_size,
    peel_once,
)
from repro.core import (
    admissible_subgraphs,
    algorithm_from_lift_solution,
    derive_zero_round_black_algorithm,
    is_correct_one_round,
    lift,
)
from repro.core.bounds import (
    aapr23_mis_parameters,
    lemma_64_sequence_length,
    matching_sequence_length,
    theorem_41_bound,
    theorem_51_applicable,
    theorem_51_bound,
    theorem_61_bound,
)
from repro.core.speedup import check_against_R_problem
from repro.experiments.scenarios import Scenario
from repro.formalism.diagrams import black_diagram, right_closure
from repro.formalism.labels import set_label_members
from repro.formalism.relaxations import (
    find_config_map_relaxation,
    find_label_relaxation,
    is_relaxation_via_config_map,
)
from repro.graphs import (
    analyze_support_graph,
    bipartite_double_cover,
    cage,
    cycle,
    mark_bipartition,
    random_regular_with_girth,
)
from repro.problems import (
    arbdefective_to_family_labels,
    matching_sequence_problems,
    maximal_matching_problem,
    pi_arbdefective,
    pi_matching,
    pi_ruling,
    ruling_set_to_family_labels,
)
from repro.roundelim import (
    LowerBoundSequence,
    apply_R,
    compress_labels,
    is_fixed_point,
    round_elimination,
)
from repro.solvers import lift_solvable_non_bipartite, solve_bipartite
from repro.utils import InvalidParameterError

#: Pipeline registry: key → callable(scenario, rng) -> list[dict].
PIPELINES: dict[str, Callable[[Scenario, random.Random], list[dict]]] = {}


def pipeline(name: str):
    """Register a pipeline function under ``name``."""

    def register(fn):
        PIPELINES[name] = fn
        return fn

    return register


def resolve_pipeline(name: str) -> Callable[[Scenario, random.Random], list[dict]]:
    try:
        return PIPELINES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown pipeline {name!r}; known: {sorted(PIPELINES)}"
        ) from None


# --------------------------------------------------------------------------
# Graph families
# --------------------------------------------------------------------------


def resolve_family(spec: str, rng: random.Random) -> nx.Graph:
    """Build the graph named by a family spec.

    Specs: ``cage:<name>``, ``double_cover:<cage>``, ``cycle:<n>``,
    ``marked_cycle:<n>`` and ``random_regular:<degree>:<girth>:<n>``
    (the only randomized family; it draws its seed from the scenario RNG).
    """
    kind, _, rest = spec.partition(":")
    if kind == "cage":
        graph, _degree, _girth = cage(rest)
        return graph
    if kind == "double_cover":
        graph, _degree, _girth = cage(rest)
        return bipartite_double_cover(graph)
    if kind == "cycle":
        return cycle(int(rest))
    if kind == "marked_cycle":
        return mark_bipartition(cycle(int(rest)))
    if kind == "random_regular":
        degree, girth, n = (int(part) for part in rest.split(":"))
        certified = random_regular_with_girth(
            n, degree, girth, seed=rng.randrange(2**31),
            certify_independence=False,
        )
        return certified.graph
    raise InvalidParameterError(f"unknown graph family spec {spec!r}")


def _require_family(scenario: Scenario, rng: random.Random) -> nx.Graph:
    if scenario.family is None:
        raise InvalidParameterError(
            f"pipeline {scenario.pipeline!r} needs a graph family "
            f"(scenario {scenario.name!r} declares none)"
        )
    return resolve_family(scenario.family, rng)


def input_subgraph_of_degree(cover: nx.Graph, delta_prime: int) -> frozenset:
    """A spanning subgraph of ``cover`` with max degree ≈ Δ′ (greedy)."""
    degrees = {node: 0 for node in cover.nodes}
    chosen = set()
    for edge in sorted(cover.edges, key=str):
        u, v = edge
        if degrees[u] < delta_prime and degrees[v] < delta_prime:
            chosen.add(frozenset(edge))
            degrees[u] += 1
            degrees[v] += 1
    return frozenset(chosen)


def matching_to_labels(graph: nx.Graph, matching: set) -> dict:
    """Appendix A translation: matched edges M; edges at an unmatched
    white node P; remaining edges O."""
    matched_nodes = {node for edge in matching for node in edge}
    labeling = {}
    for u, v in graph.edges:
        edge = frozenset((u, v))
        white = u if graph.nodes[u]["color"] == "white" else v
        if edge in matching:
            labeling[edge] = "M"
        elif white not in matched_nodes:
            labeling[edge] = "P"
        else:
            labeling[edge] = "O"
    return labeling


# --------------------------------------------------------------------------
# Matching (Theorem 4.1 / Lemma 4.5 / Figure 3)
# --------------------------------------------------------------------------


@pipeline("matching_proposal_sweep")
def matching_proposal_sweep(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Proposal-algorithm rounds vs the Theorem 4.1 bound, swept over Δ′."""
    cover = _require_family(scenario, rng)
    delta = max(dict(cover.degree).values())
    checker = scenario.resolve_checker()
    records = []
    for delta_prime in scenario.sizes:
        input_edges = input_subgraph_of_degree(cover, delta_prime)
        report = solve(
            f"matching:Δ={delta},x=0,y=1",
            algorithm="matching:proposal",
            engine=scenario.engine,
            graph=cover,
            check=False,  # validity is judged on the input graph G′ below
            input_edges=input_edges,
        )
        matching, rounds = report.outputs, report.rounds
        valid = True
        if checker is not None:
            input_graph = nx.Graph(tuple(edge) for edge in input_edges)
            input_graph.add_nodes_from(cover.nodes)
            valid = bool(checker(input_graph, matching))
        bound = theorem_41_bound(
            delta=50, delta_prime=delta_prime * 10, x=0, y=1, n=10**12
        )
        records.append(
            {
                "delta_prime": delta_prime,
                "input_edges": len(input_edges),
                "rounds": rounds,
                "matching_size": len(matching),
                "sequence_length_k": matching_sequence_length(delta_prime, 0, 1),
                "paper_bound_deterministic": round(bound.deterministic, 1),
                "valid": valid,
            }
        )
    return records


@pipeline("matching_labels_example")
def matching_labels_example(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Figure 3: a maximal matching rendered as M/O/P formalism labels."""
    cover = _require_family(scenario, rng)
    degree = max(dict(cover.degree).values())
    report = solve(
        f"matching:Δ={degree},x=0,y=1",
        algorithm="matching:proposal",
        engine=scenario.engine,
        graph=cover,
    )
    matching, rounds = report.outputs, report.rounds
    # The labeling is derived from the matching, so labeling validity
    # alone could mask a broken matching; check both independently.
    matching_valid = bool(report.valid)
    labeling = matching_to_labels(cover, matching)
    checker = scenario.resolve_checker()
    labeling_valid = True
    if checker is not None:
        labeling_valid = bool(
            checker(cover, maximal_matching_problem(degree), labeling)
        )
    counts = Counter(labeling.values())
    return [
        {
            "n": cover.number_of_nodes(),
            "degree": degree,
            "matching_size": len(matching),
            "rounds": rounds,
            "labels": {"M": counts["M"], "O": counts["O"], "P": counts["P"]},
            "matching_valid": matching_valid,
            "labeling_valid": labeling_valid,
            "valid": matching_valid and labeling_valid,
        }
    ]


@pipeline("matching_sequence_steps")
def matching_sequence_steps(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Lemma 4.5 steps: RE(Π_Δ(x,y)) relaxes to Π_Δ(x+y,y), certified.

    ``re_engine`` selects the round elimination backend
    (``kernel``/``reference``); records are engine-independent by the
    operator contract, so scenarios differing only in ``re_engine``
    cross-check the two implementations end to end.
    """
    x = scenario.option("x", 0)
    y = scenario.option("y", 1)
    re_engine = scenario.option("re_engine", "kernel")
    records = []
    for delta in scenario.sizes:
        source, _ = compress_labels(
            round_elimination(pi_matching(delta, x, y), engine=re_engine)
        )
        target = pi_matching(delta, x + y, y)
        label_map = find_label_relaxation(source, target)
        config_map = find_config_map_relaxation(source, target)
        verified = config_map is not None and is_relaxation_via_config_map(
            source, target, config_map
        )
        records.append(
            {
                "delta": delta,
                "x": x,
                "y": y,
                "label_map_witness": label_map is not None,
                "config_map_witness": verified,
                "re_alphabet_size": len(source.alphabet),
                "valid": verified,
            }
        )
    return records


@pipeline("matching_full_sequence")
def matching_full_sequence(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Corollary 4.6: verify the whole lower-bound sequence mechanically."""
    delta = scenario.option("delta", 4)
    x = scenario.option("x", 0)
    y = scenario.option("y", 1)
    re_engine = scenario.option("re_engine", "kernel")
    records = []
    for steps in scenario.sizes:
        problems = matching_sequence_problems(delta, x, y, steps=steps)
        witnesses = LowerBoundSequence(problems=tuple(problems)).verify(
            engine=re_engine
        )
        records.append(
            {
                "delta": delta,
                "x": x,
                "y": y,
                "steps": steps,
                "witnesses": len(witnesses),
                "valid": len(witnesses) == steps
                and all(
                    w.config_map is not None or w.relaxation_map is not None
                    for w in witnesses
                ),
            }
        )
    return records


# --------------------------------------------------------------------------
# Ruling sets (Theorem 6.1)
# --------------------------------------------------------------------------


@pipeline("ruling_bound_series")
def ruling_bound_series(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Theorem 6.1's β-tradeoff series vs Lemma 6.4 sequence lengths."""
    records = []
    for beta in scenario.sizes:
        bound = theorem_61_bound(
            delta=10**5, delta_prime=256, alpha=0, colors=1, beta=beta, n=10**300
        )
        t = lemma_64_sequence_length(
            delta=10**5, alpha=0, colors=1, k=256, beta=beta, epsilon=1.0
        )
        records.append(
            {
                "beta": beta,
                "bound_deterministic": round(bound.deterministic, 1),
                "sequence_length_t": t,
            }
        )
    return records


@pipeline("ruling_peeling")
def ruling_peeling(scenario: Scenario, rng: random.Random) -> list[dict]:
    """One Lemma 6.6 peeling step executed on a real ruling-set solution."""
    graph = _require_family(scenario, rng)
    beta = scenario.option("beta", 2)
    delta = scenario.option("delta", 3)
    report = solve(
        f"ruling-set:Δ={delta},c=1,β={beta}",
        algorithm="ruling-set:class-sweep",
        engine=scenario.engine,
        graph=graph,
        check=False,  # the scenario checker below validates domination
    )
    selected, rounds = report.outputs, report.rounds
    checker = scenario.resolve_checker()
    valid = True
    if checker is not None:
        valid = bool(checker(graph, selected, beta=beta, independent=True))
    labels = ruling_set_to_family_labels(
        graph, selected, {node: 1 for node in selected}, set(), alpha=0, beta=beta
    )
    diagram = black_diagram(pi_ruling(delta, 1, beta))
    sets = {key: right_closure(diagram, [lab]) for key, lab in labels.items()}
    s_nodes = set(graph.nodes)
    type1, type2, type3, untouched = classify_types(
        graph, s_nodes, sets, delta, 1, beta
    )
    types_partition_s = (
        (type1 | type2 | type3 | untouched) == s_nodes
        and len(type1) + len(type2) + len(type3) + len(untouched) == len(s_nodes)
    )
    result = peel_once(
        graph, s_nodes, sets, delta=delta, delta_prime=1, k=1, beta=beta
    )
    eliminated = all(
        f"P{beta}" not in result.assignment[(node, neighbor)]
        and f"U{beta}" not in result.assignment[(node, neighbor)]
        for node in result.s_prime
        for neighbor in graph.neighbors(node)
    )
    return [
        {
            "n": graph.number_of_nodes(),
            "beta": beta,
            "ruling_set_size": len(selected),
            "rounds": rounds,
            "types": [len(type1), len(type2), len(type3), len(untouched)],
            "types_partition_s": types_partition_s,
            "s_prime_size": len(result.s_prime),
            "quarter_certificate": len(result.s_prime) >= len(s_nodes) / 4,
            "fraction_ok": bool(result.fraction_ok),
            "pointers_eliminated": eliminated,
            "valid": valid
            and types_partition_s
            and bool(result.fraction_ok)
            and eliminated
            and len(result.s_prime) >= len(s_nodes) / 4,
        }
    ]


# --------------------------------------------------------------------------
# Arbdefective coloring (Theorem 5.1)
# --------------------------------------------------------------------------


@pipeline("arbdefective_fixed_points")
def arbdefective_fixed_points(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Lemma 5.4: RE(Π_Δ(k)) ≅ Π_Δ(k), run literally over a Δ sweep."""
    k = scenario.option("k", 2)
    re_engine = scenario.option("re_engine", "kernel")
    records = []
    for delta in scenario.sizes:
        fixed = is_fixed_point(pi_arbdefective(delta, k), engine=re_engine)
        records.append({"delta": delta, "k": k, "fixed_point": fixed, "valid": fixed})
    return records


@pipeline("arbdefective_lift_refutation")
def arbdefective_lift_refutation(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Corollary 5.8: the lift refuted on a support with χ > 2k."""
    graph = _require_family(scenario, rng)
    k = scenario.option("k", 1)
    delta = scenario.option("delta", 3)
    report = analyze_support_graph(graph)
    solvable, _sol, _lifted = lift_solvable_non_bipartite(
        graph, pi_arbdefective(2, k), delta=delta, rank=2
    )
    refuted = report.chromatic_number > 2 * k and not solvable
    return [
        {
            "n": report.n,
            "chromatic_number": report.chromatic_number,
            "girth": report.girth,
            "k": k,
            "lift_solvable": bool(solvable),
            "paper_bound": round(theorem_51_bound(8, 10**9).deterministic, 2),
            "applicable": theorem_51_applicable(
                delta=100, delta_prime=10, alpha=0, colors=2
            ),
            "valid": refuted,
        }
    ]


@pipeline("arbdefective_extraction")
def arbdefective_extraction(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Lemmas 5.9 + 5.10: Hall extraction and 2k-coloring, executed."""
    graph = _require_family(scenario, rng)
    delta = scenario.option("delta", 3)
    report = solve(
        f"arbdefective:Δ={delta},c=2",
        algorithm="arbdefective:class-sweep",
        engine=scenario.engine,
        graph=graph,
        check=False,  # the extraction below is what this pipeline validates
    )
    color_of = report.outputs["color_of"]
    orientation = report.outputs["orientation"]
    alpha = report.outputs["alpha"]
    k = (alpha + 1) * 2
    labels = arbdefective_to_family_labels(graph, color_of, orientation, alpha)
    diagram = black_diagram(pi_arbdefective(delta, k))
    sets = {key: right_closure(diagram, [lab]) for key, lab in labels.items()}
    s_nodes = set(graph.nodes)
    family = extract_family_solution(graph, s_nodes, sets, k)
    coloring = extract_coloring(graph, s_nodes, family)
    checker = scenario.resolve_checker()
    proper = True
    if checker is not None:
        proper = bool(checker(graph, coloring))
    palette = palette_size(coloring)
    return [
        {
            "n": graph.number_of_nodes(),
            "k": k,
            "palette": palette,
            "palette_cap": 2 * k,
            "proper": proper,
            "valid": proper and palette <= 2 * k,
        }
    ]


# --------------------------------------------------------------------------
# MIS ([AAPR23], §1.1)
# --------------------------------------------------------------------------


@pipeline("mis_supported")
def mis_supported(scenario: Scenario, rng: random.Random) -> list[dict]:
    """The χ_G-round Supported LOCAL MIS on a certified support graph."""
    graph = _require_family(scenario, rng)
    report = analyze_support_graph(graph)
    delta = max(dict(graph.degree).values())
    solved = solve(
        f"mis:Δ={delta}",
        algorithm="mis:aapr23",
        engine=scenario.engine,
        graph=graph,
        check=False,  # the scenario checker below validates the MIS
    )
    mis, rounds = solved.outputs, solved.rounds
    checker = scenario.resolve_checker()
    valid = True
    if checker is not None:
        valid = bool(checker(graph, mis))
    return [
        {
            "n": report.n,
            "chromatic_number": report.chromatic_number,
            "rounds": rounds,
            "mis_size": len(mis),
            "rounds_at_least_chi_minus_1": rounds >= report.chromatic_number - 1,
            "valid": valid and rounds >= report.chromatic_number - 1,
        }
    ]


@pipeline("mis_luby")
def mis_luby(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Luby's randomized MIS — exercises the seeded randomized path."""
    graph = _require_family(scenario, rng)
    delta = max(dict(graph.degree).values())
    checker = scenario.resolve_checker()
    records = []
    for _trial in range(scenario.option("trials", 1)):
        seed = rng.randrange(2**31)
        report = solve(
            f"mis:Δ={delta}",
            algorithm="mis:luby",
            engine=scenario.engine,
            graph=graph,
            seed=seed,
            check=False,  # the scenario checker below validates the MIS
        )
        mis, rounds = report.outputs, report.rounds
        valid = True
        if checker is not None:
            valid = bool(checker(graph, mis))
        records.append(
            {
                "n": graph.number_of_nodes(),
                "luby_seed": seed,
                "mis_size": len(mis),
                "rounds": rounds,
                "valid": valid,
            }
        )
    return records


@pipeline("mis_parameters")
def mis_parameters(scenario: Scenario, rng: random.Random) -> list[dict]:
    """§1.1 instantiation: the Theorem 1.7 bound matching χ_G."""
    records = []
    for exponent in scenario.sizes:
        delta, delta_prime, bound = aapr23_mis_parameters(2**exponent)
        records.append(
            {
                "log2_n": exponent,
                "delta": delta,
                "delta_prime": delta_prime,
                "bound": round(bound, 2),
            }
        )
    return records


# --------------------------------------------------------------------------
# Round elimination (Appendix B)
# --------------------------------------------------------------------------


@pipeline("re_step_census")
def re_step_census(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Alphabet/configuration growth of one RE step on MM_Δ."""
    re_engine = scenario.option("re_engine", "kernel")
    records = []
    for delta in scenario.sizes:
        problem = maximal_matching_problem(delta)
        eliminated, _mapping = compress_labels(
            round_elimination(problem, engine=re_engine)
        )
        records.append(
            {
                "delta": delta,
                "source_alphabet": len(problem.alphabet),
                "re_alphabet": len(eliminated.alphabet),
                "re_white_configs": len(eliminated.white),
                "re_black_configs": len(eliminated.black),
            }
        )
    return records


@pipeline("speedup_b2")
def speedup_b2(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Lemma B.1 / Theorem B.2: the T = 1 → 0 speedup step, exhaustively
    validated on every admissible input graph of the support."""
    graph = _require_family(scenario, rng)
    edge_limit = scenario.option("edge_limit", 8)
    re_engine = scenario.option("re_engine", "kernel")
    problem = maximal_matching_problem(2)
    lifted = lift(problem, 2, 2)
    solution = solve_bipartite(graph, lifted.to_problem())
    decoded = {edge: set_label_members(label) for edge, label in solution.items()}
    zero_round = algorithm_from_lift_solution(graph, lifted, decoded)

    def one_round_rule(node, own_inputs, view):
        return zero_round.run(node, frozenset(own_inputs))

    one_round_ok = is_correct_one_round(
        graph, one_round_rule, problem, edge_limit=edge_limit
    )
    r_problem = apply_R(problem, engine=re_engine)
    checked = passed = 0
    for input_edges in admissible_subgraphs(graph, 2, 2, edge_limit=edge_limit):
        derived = derive_zero_round_black_algorithm(
            graph, one_round_rule, problem, input_edges, edge_limit=edge_limit
        )
        checked += 1
        if check_against_R_problem(derived, graph, r_problem, input_edges):
            passed += 1
    return [
        {
            "n": graph.number_of_nodes(),
            "one_round_certified": bool(one_round_ok),
            "input_graphs_checked": checked,
            "r_problem_satisfied": passed,
            "r_alphabet": sorted(str(label) for label in r_problem.alphabet),
            "valid": bool(one_round_ok) and checked == passed == 2**edge_limit,
        }
    ]


# --------------------------------------------------------------------------
# Differential verification (repro.verification)
# --------------------------------------------------------------------------


@pipeline("verification_fuzz")
def verification_fuzz(scenario: Scenario, rng: random.Random) -> list[dict]:
    """A bounded differential-fuzz batch as an experiment scenario.

    Runs :func:`repro.verification.run_fuzz` over the scenario's oracles
    (option ``oracles``, default all) with ``cases`` cases; the fuzz seed
    derives from the scenario RNG, so the records are deterministic per
    (suite, base seed) like every other pipeline.  A record is invalid as
    soon as one discrepancy survives — the suite fails loudly.
    """
    from repro.verification import available_oracles, run_fuzz

    oracle_names = list(scenario.option("oracles") or available_oracles())
    cases = scenario.option("cases", 10)
    fuzz_seed = rng.randrange(10**6)
    payload, _entries = run_fuzz(oracle_names, cases=cases, seed=fuzz_seed)
    return [
        {
            "oracle": name,
            "fuzz_seed": fuzz_seed,
            "cases": stats["cases"],
            "discrepancies": stats["discrepancies"],
            "valid": stats["discrepancies"] == 0,
        }
        for name, stats in sorted(payload["oracles"].items())
    ]


# --------------------------------------------------------------------------
# Solve service (repro.service)
# --------------------------------------------------------------------------


@pipeline("service_roundtrip")
def service_roundtrip(scenario: Scenario, rng: random.Random) -> list[dict]:
    """The service's core contract, exercised as an experiment scenario.

    Runs an in-process :class:`~repro.service.SolveService` (no socket:
    the experiment asserts the pipeline, not the transport) through a
    cold/warm/duplicate cycle per spec and records the properties CI
    gates on: byte parity against the direct façade, cache hits on
    repeats, digest invariance across engines, and exactly-one-solve
    dedup.  Records carry digests and booleans only — no latencies — so
    they are byte-deterministic like every other pipeline.
    """
    import threading as _threading

    from repro.service import SolveService, solve_request
    from repro.utils.serialization import canonical_dumps

    specs = scenario.option(
        "specs",
        (
            ("maximal-matching:delta=3", "matching:proposal"),
            ("ruling-set:delta=3,colors=1,beta=2", "ruling-set:class-sweep"),
        ),
    )
    n = scenario.option("n", 32)
    duplicates = scenario.option("duplicates", 4)
    records = []
    with SolveService(jobs=1) as service:
        for spec, algorithm in specs:
            seed = rng.randrange(2**31)
            request = solve_request(
                spec, algorithm=algorithm, n=n, seed=seed,
                engine=scenario.engine,
            )
            before = service.solves_computed
            cold = service.submit(request)
            warm = service.submit(request)
            other_engine = "object" if scenario.engine == "batched" else "batched"
            cross = service.submit(solve_request(
                spec, algorithm=algorithm, n=n, seed=seed, engine=other_engine,
            ))
            responses = [None] * duplicates
            request2 = solve_request(
                spec, algorithm=algorithm, n=n, seed=seed + 1,
                engine=scenario.engine,
            )
            def _hit(i, out=responses, req=request2, svc=service):
                out[i] = svc.submit(req)
            threads = [
                _threading.Thread(target=_hit, args=(i,))
                for i in range(duplicates)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            solves = service.solves_computed - before
            direct = solve(
                spec, algorithm=algorithm, n=n, seed=seed,
                engine=scenario.engine,
            )
            parity = (
                canonical_dumps(cold["report"]) == direct.canonical_json()
            )
            records.append(
                {
                    "spec": spec,
                    "algorithm": algorithm,
                    "digest": cold["digest"],
                    "cold_cached": cold["cached"],
                    "warm_cached": warm["cached"],
                    "engine_invariant": cross["cached"]
                    and cross["digest"] == cold["digest"],
                    "byte_parity": parity,
                    "duplicates": duplicates,
                    "duplicate_solves": solves - 1,
                    "valid": parity
                    and not cold["cached"]
                    and warm["cached"]
                    and cross["cached"]
                    and solves == 2  # the cold solve + one for all duplicates
                    and all(r["status"] == "ok" for r in responses),
                }
            )
    return records


# --------------------------------------------------------------------------
# Solver backends (repro.solvers)
# --------------------------------------------------------------------------


@pipeline("zero_round_gates")
def zero_round_gates(scenario: Scenario, rng: random.Random) -> list[dict]:
    """Theorem 3.2 zero-round gates decided by a named solver backend.

    The ``solver`` option picks the decision procedure (``csp``/``sat``)
    behind :func:`~repro.core.zero_round.zero_round_solvable` and
    :func:`~repro.solvers.solution_set`.  Like the engine, the backend is
    deliberately absent from the records: by the backend contract they
    are byte-identical across both, which the ``solvers`` suite's
    ``-sat-solver`` twin pins in CI.  Each record cross-checks the gate
    three ways — the uniform sufficient condition implies it, and it
    must agree with the lift's enumerated solution count being nonzero.
    """
    from repro.core.zero_round import zero_round_solvable
    from repro.roundelim.explore.classify import uniform_zero_round
    from repro.solvers import solution_set

    support = _require_family(scenario, rng)
    solver = scenario.option("solver", "csp")
    delta = scenario.option("delta", 2)
    records = []
    for x in scenario.sizes:
        problem = pi_matching(delta, x, 1)
        lifted = lift(problem, problem.white_arity, problem.black_arity)
        gate = zero_round_solvable(support, problem, backend=solver)
        uniform = uniform_zero_round(problem)
        solutions = solution_set(support, lifted.to_problem(), backend=solver)
        records.append(
            {
                "delta": delta,
                "x": x,
                "uniform_zero_round": uniform,
                "zero_round": bool(gate),
                "lift_solutions": len(solutions),
                "valid": gate == (len(solutions) > 0) and (not uniform or gate),
            }
        )
    return records


# --------------------------------------------------------------------------
# Round elimination exploration (repro.roundelim.explore)
# --------------------------------------------------------------------------


@pipeline("exploration_search")
def exploration_search(scenario: Scenario, rng: random.Random) -> list[dict]:
    """One frontier search over a paper family, summarized per family.

    Roots come from the problem family the scenario's ``family`` field
    names (``matching`` uses ``scenario.sizes`` as the x-sweep of
    Π_Δ(x,1); ``ruling`` / ``arbdefective`` seed their single family
    problem — no graph is involved, so the field is free for this); the
    search runs with the scenario's policy knobs and the record distills
    the deterministic :class:`ExplorationReport`.  ``jobs`` (worker
    processes inside the explorer) and ``re_engine`` are execution
    details: by the explorer's determinism contract and the operator
    engine contract the record — including the embedded report digest —
    is byte-identical across both, which is what the suite's
    ``-jobs4`` / ``-reference-engine`` twin scenarios pin down.
    """
    from repro.roundelim.explore import (
        ExplorationLimits,
        ExplorationPolicy,
        explore,
    )

    family = scenario.family or "matching"
    delta = scenario.option("delta", 3)
    if family == "matching":
        x_values = tuple(scenario.sizes) or tuple(range(delta))
        roots = [pi_matching(delta, x, 1) for x in x_values]
    elif family == "ruling":
        roots = [
            pi_ruling(delta, scenario.option("colors", 1), scenario.option("beta", 2))
        ]
    elif family == "arbdefective":
        roots = [pi_arbdefective(delta, scenario.option("k", 2))]
    else:
        raise InvalidParameterError(
            f"unknown exploration family {family!r}; "
            f"known: ['arbdefective', 'matching', 'ruling']"
        )
    policy = ExplorationPolicy(
        order=scenario.option("order", "bfs"),
        moves=tuple(scenario.option("moves", ("RE",))),
        step_budget=scenario.option("step_budget", 200_000),
        engine=scenario.option("re_engine", "kernel"),
        zero_round=scenario.option("zero_round", "uniform"),
    )
    limits = ExplorationLimits(
        max_depth=scenario.option("max_depth", 1),
        max_nodes=scenario.option("max_nodes", 8),
    )
    report = explore(
        roots, policy=policy, limits=limits, jobs=scenario.option("jobs", 1)
    )
    payload = report.payload()

    expect_sequence = scenario.option("expect_sequence_length", 0)
    expect_fixed_point = scenario.option("expect_fixed_point")
    fixed_point_ok = True
    if expect_fixed_point == "exact":
        fixed_point_ok = len(report.fixed_points) >= 1
    elif expect_fixed_point == "relaxation":
        fixed_point_ok = len(report.relaxation_fixed_points) >= 1
    consistent = (
        report.visited == len(report.nodes)
        and report.expanded <= limits.max_nodes
        and all(node["depth"] <= limits.max_depth for node in report.nodes.values())
    )
    return [
        {
            "family": family,
            "delta": delta,
            "visited": report.visited,
            "expanded": report.expanded,
            "dedup_hits": report.dedup_hits,
            "budget_exhausted_ops": report.counts["budget_exhausted_ops"],
            "steps": report.counts["steps"],
            "exact_fixed_points": len(report.fixed_points),
            "relaxation_fixed_points": len(report.relaxation_fixed_points),
            "zero_round_nodes": len(report.zero_round_nodes),
            "sequences": len(report.sequences),
            "verified_sequences": len(report.verified_sequences),
            "best_sequence_length": report.best_sequence_length,
            "report_digest": payload["digest"],
            "valid": consistent
            and fixed_point_ok
            and report.best_sequence_length >= expect_sequence,
        }
    ]
