"""Scenario execution: serial or multiprocessing, deterministic either way.

The runner's contract is that the *deterministic payload* of a suite run —
everything except wall-clock timings — depends only on (suite, base seed).
Each scenario derives a private RNG from its own identity (never from
execution order or worker assignment), scenarios are sorted by name in the
output, and serialization is canonical, so ``--jobs 4`` and ``--jobs 1``
write byte-identical JSON.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from repro.experiments.pipelines import resolve_pipeline
from repro.experiments.registry import get_suite
from repro.experiments.scenarios import RESULT_SCHEMA, Scenario, ScenarioResult
from repro.local.measurement import timed
from repro.utils.serialization import result_digest


def execute_scenario(scenario: Scenario, base_seed: int = 0) -> ScenarioResult:
    """Run one scenario: resolve its pipeline, feed it a derived RNG, time it."""
    pipeline = resolve_pipeline(scenario.pipeline)
    rng = scenario.derive_rng(base_seed)
    records, wall_seconds = timed(pipeline, scenario, rng)
    ok = all(record.get("valid", True) for record in records)
    return ScenarioResult(
        scenario=scenario,
        records=tuple(records),
        ok=ok,
        wall_seconds=wall_seconds,
    )


def _worker(task: tuple[Scenario, int]) -> ScenarioResult:
    scenario, base_seed = task
    return execute_scenario(scenario, base_seed)


@dataclass(frozen=True)
class SuiteResult:
    """All scenario results of one suite run."""

    suite: str
    seed: int
    results: tuple[ScenarioResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def wall_seconds(self) -> float:
        return sum(result.wall_seconds for result in self.results)

    def payload(self, timings: bool = False) -> dict:
        """The JSON document for this run.

        Deterministic by default; ``timings=True`` adds a wall-clock block
        (which of course varies run to run).
        """
        body = {
            "schema": RESULT_SCHEMA,
            "suite": self.suite,
            "seed": self.seed,
            "ok": self.ok,
            "scenarios": [result.payload() for result in self.results],
        }
        body["digest"] = result_digest(body)
        if timings:
            body["timings"] = {
                result.scenario.name: round(result.wall_seconds, 6)
                for result in self.results
            }
            body["timings"]["total"] = round(self.wall_seconds, 6)
        return body


class Runner:
    """Executes suites serially or across a process pool.

    ``engine`` (when given) retargets every scenario to that
    :mod:`repro.api` backend — the ``--engine`` dimension: any suite can
    run on any backend, and the deterministic payload must not change.
    """

    def __init__(
        self, jobs: int = 1, seed: int = 0, engine: str | None = None
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.seed = seed
        self.engine = engine

    def run_scenarios(self, suite: str, scenarios) -> SuiteResult:
        ordered = sorted(scenarios, key=lambda scenario: scenario.name)
        if self.engine is not None:
            ordered = [scenario.with_engine(self.engine) for scenario in ordered]
        tasks = [(scenario, self.seed) for scenario in ordered]
        if self.jobs == 1 or len(tasks) <= 1:
            results = [_worker(task) for task in tasks]
        else:
            processes = min(self.jobs, len(tasks))
            with multiprocessing.Pool(processes=processes) as pool:
                results = pool.map(_worker, tasks)
        return SuiteResult(suite=suite, seed=self.seed, results=tuple(results))

    def run_suite(self, name: str) -> SuiteResult:
        return self.run_scenarios(name, get_suite(name))
