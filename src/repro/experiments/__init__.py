"""Declarative experiment harness: scenarios, suites, runner, CLI.

Replaces the copy-pasted boilerplate of ``benchmarks/bench_*.py`` with a
single registry of named scenario suites (``repro.experiments.registry``),
measurement pipelines (``repro.experiments.pipelines``) and a serial /
multiprocessing runner with canonical JSON output.  Entry point:
``python -m repro.experiments``.
"""

from repro.experiments.pipelines import (
    PIPELINES,
    resolve_family,
    resolve_pipeline,
)
from repro.experiments.registry import (
    SUITES,
    get_scenario,
    get_suite,
    suite_names,
)
from repro.experiments.runner import Runner, SuiteResult, execute_scenario
from repro.experiments.scenarios import (
    CHECKERS,
    RESULT_SCHEMA,
    Scenario,
    ScenarioResult,
)

__all__ = [
    "CHECKERS",
    "PIPELINES",
    "RESULT_SCHEMA",
    "Runner",
    "SUITES",
    "Scenario",
    "ScenarioResult",
    "SuiteResult",
    "execute_scenario",
    "get_scenario",
    "get_suite",
    "resolve_family",
    "resolve_pipeline",
    "suite_names",
]
