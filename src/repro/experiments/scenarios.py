"""Declarative experiment scenarios.

A :class:`Scenario` names everything one experiment needs — a graph
family, a size sweep, a measurement pipeline, a validity checker and a
seed — without holding any live objects, so scenarios are picklable
(the parallel runner ships them to worker processes) and serializable
(their description is embedded in result JSON).

Pipelines and graph families are referenced *by key*; the tables live in
:mod:`repro.experiments.pipelines` and are resolved at execution time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.checkers import (
    check_bipartite_solution,
    check_maximal_matching,
    check_mis,
    check_proper_coloring,
    check_ruling_set,
)
from repro.utils import InvalidParameterError

#: Version tag embedded in every result payload (for future BENCH_*.json
#: trajectory tracking to key on).
RESULT_SCHEMA = "repro.experiments/v1"

#: Named validity checkers a scenario can reference.
CHECKERS = {
    "bipartite_solution": check_bipartite_solution,
    "maximal_matching": check_maximal_matching,
    "mis": check_mis,
    "proper_coloring": check_proper_coloring,
    "ruling_set": check_ruling_set,
}


@dataclass(frozen=True)
class Scenario:
    """One declarative experiment: family + sweep + pipeline + checker + seed.

    ``engine`` names the :mod:`repro.api` execution backend pipelines run
    their algorithms on.  It is an execution detail — like ``--jobs`` —
    deliberately *excluded* from :meth:`describe`: the deterministic
    payload must be byte-identical across engines (the engine-parity
    guarantee CI enforces).
    """

    name: str
    pipeline: str
    family: str | None = None
    sizes: tuple[int, ...] = ()
    checker: str | None = None
    seed: int = 0
    params: tuple[tuple[str, object], ...] = ()
    engine: str = "object"

    @classmethod
    def create(
        cls,
        name: str,
        pipeline: str,
        family: str | None = None,
        sizes: tuple[int, ...] = (),
        checker: str | None = None,
        seed: int = 0,
        engine: str = "object",
        **params,
    ) -> "Scenario":
        """Build a scenario with keyword parameters given naturally."""
        return cls(
            name=name,
            pipeline=pipeline,
            family=family,
            sizes=tuple(sizes),
            checker=checker,
            seed=seed,
            params=tuple(sorted(params.items())),
            engine=engine,
        )

    def with_engine(self, engine: str) -> "Scenario":
        """The same scenario retargeted to another execution backend."""
        return replace(self, engine=engine)

    @property
    def options(self) -> dict:
        """The extra pipeline parameters as a dict."""
        return dict(self.params)

    def option(self, key: str, default=None):
        return self.options.get(key, default)

    def derive_rng(self, base_seed: int) -> random.Random:
        """The scenario's private RNG.

        Seeded from the run seed plus the scenario's own identity only, so
        the stream is identical whether the scenario runs serially, in a
        worker process, or in a different position within its suite.
        """
        return random.Random(f"{base_seed}:{self.seed}:{self.name}")

    def resolve_checker(self):
        """The checker callable, or ``None`` when no checker is declared."""
        if self.checker is None:
            return None
        try:
            return CHECKERS[self.checker]
        except KeyError:
            raise InvalidParameterError(
                f"scenario {self.name!r} references unknown checker "
                f"{self.checker!r}; known: {sorted(CHECKERS)}"
            ) from None

    def describe(self) -> dict:
        """The serializable identity block embedded in result payloads.

        ``engine`` is intentionally absent: records must not depend on
        the backend, so identical runs on different engines serialize
        byte-identically.
        """
        return {
            "name": self.name,
            "pipeline": self.pipeline,
            "family": self.family,
            "sizes": list(self.sizes),
            "checker": self.checker,
            "seed": self.seed,
            "params": {key: value for key, value in self.params},
        }


@dataclass(frozen=True)
class ScenarioResult:
    """Deterministic records plus (non-deterministic) wall-clock timing."""

    scenario: Scenario
    records: tuple[dict, ...]
    ok: bool
    wall_seconds: float = field(compare=False, default=0.0)

    def payload(self) -> dict:
        """The deterministic JSON block for this scenario."""
        return {
            "scenario": self.scenario.describe(),
            "records": list(self.records),
            "ok": self.ok,
        }
