"""``python -m repro.experiments`` — list, run and smoke-test suites.

Commands:

* ``list`` — suites and their scenarios, plus the algorithm and engine
  registries (via :func:`repro.api.list_algorithms` /
  :func:`repro.api.list_engines`);
* ``run --suite NAME [--jobs N] [--seed K] [--engine E] [--out FILE]
  [--timings]`` — execute a suite; canonical JSON goes to ``--out`` (or
  stdout), a human summary table goes to stderr; ``--engine`` retargets
  every scenario to a :mod:`repro.api` backend (object/batched) without
  changing the deterministic payload;
* ``smoke [--jobs N] ...`` — shorthand for ``run --suite smoke``, the CI
  benchmark gate.

The process exits non-zero when any scenario's validity check fails, so
CI can gate on the command directly.
"""

from __future__ import annotations

import argparse
import sys

from repro.api.engines import available_engines
from repro.api.introspection import list_algorithms, list_engines, list_solvers
from repro.experiments.registry import SUITES, suite_names
from repro.experiments.runner import Runner
from repro.utils.serialization import canonical_dumps, write_json
from repro.utils.tables import format_table


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (suite, scenario.name, scenario.pipeline, scenario.family or "-")
        for suite in suite_names()
        for scenario in SUITES[suite]
    ]
    print(format_table(["suite", "scenario", "pipeline", "family"], rows))
    # The registries, via the api introspection helpers — the same data
    # the solve service's /v1/status endpoint reports.
    algorithm_rows = [
        (entry["name"], entry["kind"], ", ".join(entry["families"]))
        for entry in list_algorithms()
    ]
    print()
    print(format_table(["algorithm", "kind", "families"], algorithm_rows))
    engine_rows = [
        (entry["name"], entry["type"], "yes" if entry["default"] else "")
        for entry in list_engines()
    ]
    print()
    print(format_table(["engine", "type", "default"], engine_rows))
    solver_rows = [
        (
            entry["name"],
            entry["budget_unit"],
            "yes" if entry["default"] else "",
            entry["description"],
        )
        for entry in list_solvers()
    ]
    print()
    print(
        format_table(
            ["solver", "budget unit", "default", "description"], solver_rows
        )
    )
    return 0


def _summarize(result) -> str:
    rows = [
        (
            item.scenario.name,
            item.scenario.pipeline,
            len(item.records),
            "ok" if item.ok else "FAIL",
            f"{item.wall_seconds:.3f}s",
        )
        for item in result.results
    ]
    rows.append(("total", "", "", "ok" if result.ok else "FAIL",
                 f"{result.wall_seconds:.3f}s"))
    return format_table(
        ["scenario", "pipeline", "records", "status", "wall"],
        rows,
        title=f"suite {result.suite!r} (seed {result.seed}, "
        f"{len(result.results)} scenarios)",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    runner = Runner(jobs=args.jobs, seed=args.seed, engine=args.engine)
    result = runner.run_suite(args.suite)
    payload = result.payload(timings=args.timings)
    if args.out:
        write_json(args.out, payload)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(canonical_dumps(payload, indent=2))
    print(_summarize(result), file=sys.stderr)
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative experiment suites for the reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list suites and scenarios").set_defaults(
        handler=_cmd_list
    )

    run = commands.add_parser("run", help="run a suite")
    run.add_argument("--suite", required=True, choices=suite_names())
    _add_run_options(run)
    run.set_defaults(handler=_cmd_run)

    smoke = commands.add_parser(
        "smoke", help="run the fast CI smoke suite (alias for run --suite smoke)"
    )
    _add_run_options(smoke)
    smoke.set_defaults(handler=_cmd_run, suite="smoke")

    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_run_options(command: argparse.ArgumentParser) -> None:
    command.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes (default: 1, serial)")
    command.add_argument("--seed", type=int, default=0,
                         help="base seed for scenario RNGs (default: 0)")
    command.add_argument("--engine", default=None,
                         choices=available_engines(),
                         help="run every scenario on this repro.api engine "
                         "backend (default: each scenario's own, normally "
                         "'object'); results are engine-independent")
    command.add_argument("--out", default=None,
                         help="write canonical JSON here instead of stdout")
    command.add_argument("--timings", action="store_true",
                         help="include wall-clock timings in the JSON "
                         "(breaks run-to-run byte equality)")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)
