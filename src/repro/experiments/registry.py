"""Named scenario suites covering the paper's experiment families.

Suites group scenarios by paper section: ``matching`` (Theorem 4.1,
Lemma 4.5, Figure 3), ``ruling_sets`` (Theorem 6.1), ``arbdefective``
(Theorem 5.1), ``mis`` ([AAPR23], §1.1) and ``round_elimination``
(Appendix B).  The ``smoke`` suite is the CI gate: a fast cross-section
of every family sized to finish well under a minute.
"""

from __future__ import annotations

from repro.api import available_engines
from repro.experiments.scenarios import Scenario
from repro.utils import InvalidParameterError

SUITES: dict[str, tuple[Scenario, ...]] = {
    "matching": (
        Scenario.create(
            "thm41-proposal-sweep",
            pipeline="matching_proposal_sweep",
            family="double_cover:tutte_coxeter",
            sizes=(1, 2, 3),
            checker="maximal_matching",
        ),
        Scenario.create(
            "fig3-formalism-labels",
            pipeline="matching_labels_example",
            family="double_cover:heawood",
            checker="bipartite_solution",
        ),
        Scenario.create(
            "lem45-steps-x0",
            pipeline="matching_sequence_steps",
            sizes=(3, 4),
            x=0,
            y=1,
        ),
        Scenario.create(
            "lem45-steps-x1",
            pipeline="matching_sequence_steps",
            sizes=(4,),
            x=1,
            y=1,
        ),
        # Same Lemma 4.5 step on the reference engine: the records must
        # match lem45-steps-x0's first entry byte-for-byte (the RE
        # engine contract, asserted by
        # tests/experiments/test_re_engine_dimension.py).
        Scenario.create(
            "lem45-steps-reference-engine",
            pipeline="matching_sequence_steps",
            sizes=(3,),
            x=0,
            y=1,
            re_engine="reference",
        ),
        Scenario.create(
            "cor46-full-sequence",
            pipeline="matching_full_sequence",
            sizes=(2,),
            delta=4,
            x=0,
            y=1,
        ),
    ),
    "ruling_sets": (
        Scenario.create(
            "thm61-bound-series",
            pipeline="ruling_bound_series",
            sizes=(1, 2, 3, 4),
        ),
        Scenario.create(
            "thm61-peeling",
            pipeline="ruling_peeling",
            family="cage:tutte_coxeter",
            checker="ruling_set",
            beta=2,
            delta=3,
        ),
        # Engine twin for the newly ported ruling-set kernel: the same
        # peeling scenario through the vectorized engine must produce a
        # byte-identical run (CI diffs the two suite outputs).
        *(
            (
                Scenario.create(
                    "thm61-peeling-vectorized",
                    pipeline="ruling_peeling",
                    family="cage:tutte_coxeter",
                    checker="ruling_set",
                    beta=2,
                    delta=3,
                    engine="vectorized",
                ),
            )
            if "vectorized" in available_engines()
            else ()
        ),
    ),
    "arbdefective": (
        Scenario.create(
            "thm51-fixed-points-k2",
            pipeline="arbdefective_fixed_points",
            sizes=(2, 3, 4),
            k=2,
        ),
        Scenario.create(
            "thm51-fixed-points-k3",
            pipeline="arbdefective_fixed_points",
            sizes=(3,),
            k=3,
        ),
        Scenario.create(
            "thm51-lift-refutation",
            pipeline="arbdefective_lift_refutation",
            family="cage:petersen",
            k=1,
            delta=3,
        ),
        Scenario.create(
            "thm51-extraction",
            pipeline="arbdefective_extraction",
            family="cage:petersen",
            checker="proper_coloring",
            delta=3,
        ),
    ),
    "mis": (
        *(
            Scenario.create(
                f"aapr23-{name}",
                pipeline="mis_supported",
                family=f"cage:{name}",
                checker="mis",
            )
            for name in ("petersen", "heawood", "pappus", "mcgee", "tutte_coxeter")
        ),
        Scenario.create(
            "luby-petersen",
            pipeline="mis_luby",
            family="cage:petersen",
            checker="mis",
            trials=3,
        ),
        Scenario.create(
            "luby-random-regular",
            pipeline="mis_luby",
            family="random_regular:3:4:16",
            checker="mis",
            trials=2,
        ),
        Scenario.create(
            "aapr23-parameters",
            pipeline="mis_parameters",
            sizes=(16, 24, 32, 48),
        ),
    ),
    "round_elimination": (
        Scenario.create(
            "re-step-census",
            pipeline="re_step_census",
            sizes=(2, 3),
        ),
        # The kernel-vs-reference dimension: identical records from both
        # engines on the same census sweep.
        Scenario.create(
            "re-step-census-reference-engine",
            pipeline="re_step_census",
            sizes=(2, 3),
            re_engine="reference",
        ),
        Scenario.create(
            "thmb2-speedup",
            pipeline="speedup_b2",
            family="marked_cycle:8",
            edge_limit=8,
        ),
        Scenario.create(
            "thmb2-speedup-reference-engine",
            pipeline="speedup_b2",
            family="marked_cycle:8",
            edge_limit=8,
            re_engine="reference",
        ),
    ),
    # Differential fuzzing (repro.verification) as first-class scenarios:
    # the oracle registry runs under the same seeded, jobs-parallel,
    # byte-deterministic contract as every other suite.
    "verification": (
        Scenario.create(
            "fuzz-all-oracles",
            pipeline="verification_fuzz",
            cases=15,
        ),
        Scenario.create(
            "fuzz-roundelim-deep",
            pipeline="verification_fuzz",
            cases=8,
            oracles=("roundelim",),
        ),
        Scenario.create(
            "fuzz-solver-views",
            pipeline="verification_fuzz",
            cases=10,
            oracles=("solver", "views"),
        ),
    ),
    # Round elimination exploration (repro.roundelim.explore): frontier
    # search over the paper families.  The matching Δ=3 scenario is the
    # acceptance criterion — it must *rediscover* the Corollary 4.6
    # chain Π_3(0,1) → Π_3(1,1) → Π_3(2,1) as a verified lower bound
    # sequence and classify Π_3(2,1) as the family's fixed point; its
    # -jobs4 and -reference-engine twins pin the worker- and
    # engine-independence of the records.
    "exploration": (
        Scenario.create(
            "explore-matching-d3",
            pipeline="exploration_search",
            sizes=(0, 1, 2),
            family="matching",
            delta=3,
            max_depth=1,
            max_nodes=8,
            expect_sequence_length=2,
            expect_fixed_point="relaxation",
        ),
        Scenario.create(
            "explore-matching-d3-jobs4",
            pipeline="exploration_search",
            sizes=(0, 1, 2),
            family="matching",
            delta=3,
            max_depth=1,
            max_nodes=8,
            expect_sequence_length=2,
            expect_fixed_point="relaxation",
            jobs=4,
        ),
        Scenario.create(
            "explore-matching-d3-reference-engine",
            pipeline="exploration_search",
            sizes=(0, 1, 2),
            family="matching",
            delta=3,
            max_depth=1,
            max_nodes=8,
            expect_sequence_length=2,
            expect_fixed_point="relaxation",
            re_engine="reference",
        ),
        Scenario.create(
            "explore-arbdefective-fixed-point",
            pipeline="exploration_search",
            family="arbdefective",
            delta=3,
            k=2,
            max_depth=2,
            max_nodes=4,
            expect_sequence_length=2,
            expect_fixed_point="exact",
        ),
        Scenario.create(
            "explore-ruling-d3",
            pipeline="exploration_search",
            family="ruling",
            delta=3,
            colors=1,
            beta=2,
            max_depth=1,
            max_nodes=2,
        ),
        Scenario.create(
            "explore-merge-best-first",
            pipeline="exploration_search",
            sizes=(2,),
            family="matching",
            delta=3,
            order="min-alphabet",
            moves=("RE", "merge"),
            max_depth=2,
            max_nodes=6,
        ),
    ),
    # Solver backends (repro.solvers): the Theorem 3.2 zero-round gate
    # decided through both decision procedures.  The -sat-solver twin
    # must serialize byte-identically to the csp scenario (the backend,
    # like the engine, never reaches the records) — CI diffs the two
    # record files.
    "solvers": (
        Scenario.create(
            "zero-round-gates",
            pipeline="zero_round_gates",
            family="marked_cycle:8",
            sizes=(0, 1),
            delta=2,
        ),
        Scenario.create(
            "zero-round-gates-sat-solver",
            pipeline="zero_round_gates",
            family="marked_cycle:8",
            sizes=(0, 1),
            delta=2,
            solver="sat",
        ),
    ),
    # The solve service (repro.service): cold/warm/duplicate cycles over
    # an in-process daemon, gating byte parity with the direct façade,
    # engine-invariant request digests and exactly-one-solve dedup.  The
    # -batched (and, where numpy is installed, -vectorized) twins run
    # the same cycle from the other engine sides; the twin is registered
    # conditionally so a numpy-less checkout never carries a scenario it
    # cannot execute.
    "service": (
        Scenario.create(
            "service-roundtrip",
            pipeline="service_roundtrip",
            duplicates=4,
        ),
        Scenario.create(
            "service-roundtrip-batched",
            pipeline="service_roundtrip",
            duplicates=4,
            engine="batched",
        ),
        *(
            (
                Scenario.create(
                    "service-roundtrip-vectorized",
                    pipeline="service_roundtrip",
                    duplicates=4,
                    engine="vectorized",
                ),
            )
            if "vectorized" in available_engines()
            else ()
        ),
    ),
    # The CI gate: one fast scenario per family, sized for < 60 s total.
    "smoke": (
        Scenario.create(
            "smoke-exploration",
            pipeline="exploration_search",
            sizes=(1, 2),
            family="matching",
            delta=3,
            max_depth=1,
            max_nodes=4,
            expect_sequence_length=2,
            expect_fixed_point="relaxation",
        ),
        Scenario.create(
            "smoke-verification-fuzz",
            pipeline="verification_fuzz",
            cases=5,
        ),
        Scenario.create(
            "smoke-matching-proposal",
            pipeline="matching_proposal_sweep",
            family="double_cover:heawood",
            sizes=(1, 2),
            checker="maximal_matching",
        ),
        Scenario.create(
            "smoke-matching-step",
            pipeline="matching_sequence_steps",
            sizes=(3,),
            x=0,
            y=1,
        ),
        Scenario.create(
            "smoke-ruling-bounds",
            pipeline="ruling_bound_series",
            sizes=(1, 2),
        ),
        Scenario.create(
            "smoke-arbdefective-fixed-point",
            pipeline="arbdefective_fixed_points",
            sizes=(2, 3),
            k=2,
        ),
        Scenario.create(
            "smoke-mis-petersen",
            pipeline="mis_supported",
            family="cage:petersen",
            checker="mis",
        ),
        Scenario.create(
            "smoke-luby",
            pipeline="mis_luby",
            family="cage:petersen",
            checker="mis",
            trials=1,
        ),
        Scenario.create(
            "smoke-re-census",
            pipeline="re_step_census",
            sizes=(2,),
        ),
        Scenario.create(
            "smoke-re-census-reference-engine",
            pipeline="re_step_census",
            sizes=(2,),
            re_engine="reference",
        ),
        Scenario.create(
            "smoke-service",
            pipeline="service_roundtrip",
            duplicates=2,
        ),
    ),
}


def suite_names() -> list[str]:
    return sorted(SUITES)


def get_suite(name: str) -> tuple[Scenario, ...]:
    try:
        return SUITES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown suite {name!r}; known: {suite_names()}"
        ) from None


def get_scenario(suite: str, name: str) -> Scenario:
    for scenario in get_suite(suite):
        if scenario.name == name:
            return scenario
    raise InvalidParameterError(
        f"suite {suite!r} has no scenario {name!r}; "
        f"known: {[s.name for s in get_suite(suite)]}"
    )
