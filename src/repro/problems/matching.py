"""The x-maximal y-matching problem family Π_Δ(x,y) (paper §4).

An *x-maximal y-matching* of G is an edge subset M where every node is
incident to at most y edges of M, and every M-free node v has at least
min{deg(v), Δ−x} matched neighbors.  Maximal matching is the case
x = 0, y = 1.

Definition 4.2 encodes the family in the black-white formalism over labels
{M, O, P, X, Z}; Lemma 4.4 ([BO20]) shows a solution to x-maximal
y-matching yields one to Π_Δ(x,y) in 2 rounds, so lower bounds transfer
(minus 2).  Observation 4.3 gives the relaxation maps inside the family and
Lemma 4.5 / Corollary 4.6 the round elimination sequence
Π_Δ(x,y) → Π_Δ(x+y,y) → … used by Theorem 4.1.
"""

from __future__ import annotations

from repro.formalism.configurations import CondensedConfiguration, Configuration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.problems import Problem
from repro.utils import InvalidParameterError

MATCHING_LABELS = ("M", "O", "P", "X", "Z")


def _slots(*groups: tuple[str, int]) -> list[frozenset[str]]:
    """Build condensed slots from (alternatives, multiplicity) pairs."""
    slots: list[frozenset[str]] = []
    for alternatives, count in groups:
        if count < 0:
            raise InvalidParameterError(
                f"negative multiplicity {count} for slot [{alternatives}]"
            )
        slots.extend([frozenset(alternatives)] * count)
    return slots


def validate_xy_parameters(delta: int, x: int, y: int) -> None:
    """Check Definition 4.2's implicit parameter range.

    Requires 1 ≤ y, 0 ≤ x, and y + x ≤ Δ so that every exponent in the
    definition is non-negative.
    """
    if delta < 2:
        raise InvalidParameterError(f"Δ must be ≥ 2, got {delta}")
    if y < 1:
        raise InvalidParameterError(f"y must be ≥ 1, got {y}")
    if x < 0:
        raise InvalidParameterError(f"x must be ≥ 0, got {x}")
    if y + x > delta:
        raise InvalidParameterError(
            f"need x + y ≤ Δ for Π_Δ(x,y); got x={x}, y={y}, Δ={delta}"
        )


def pi_matching(delta: int, x: int, y: int) -> Problem:
    """The problem Π_Δ(x,y) of Definition 4.2.

    White constraint (node side, arity Δ):
        X^{y-1} M O^{Δ-y}
        X^y O^x P^{Δ-y-x}
        X^y Z O^{Δ-y-1}
    Black constraint (arity Δ):
        [MZPOX]^{y-1} [MX] [POX]^{Δ-y}
        [MZPOX]^y [POX]^x [OX]^{Δ-y-x}
        [MZPOX]^y [X] [POX]^{Δ-y-1}
    """
    validate_xy_parameters(delta, x, y)
    white = Constraint.from_condensed(
        [
            CondensedConfiguration(
                _slots(("X", y - 1), ("M", 1), ("O", delta - y))
            ),
            CondensedConfiguration(
                _slots(("X", y), ("O", x), ("P", delta - y - x))
            ),
            CondensedConfiguration(
                _slots(("X", y), ("Z", 1), ("O", delta - y - 1))
            ),
        ]
    )
    black = Constraint.from_condensed(
        [
            CondensedConfiguration(
                _slots(("MZPOX", y - 1), ("MX", 1), ("POX", delta - y))
            ),
            CondensedConfiguration(
                _slots(("MZPOX", y), ("POX", x), ("OX", delta - y - x))
            ),
            CondensedConfiguration(
                _slots(("MZPOX", y), ("X", 1), ("POX", delta - y - 1))
            ),
        ]
    )
    return Problem(
        alphabet=frozenset(MATCHING_LABELS),
        white=white,
        black=black,
        name=f"Π_{delta}({x},{y})",
    )


def pi_matching_endpoint(delta_prime: int, y: int) -> Problem:
    """Π_Δ'(x', y) with x' = Δ' − 1 − y, the last problem of the §4.2
    sequence (the one shown with Figure 1)."""
    x_prime = delta_prime - 1 - y
    return pi_matching(delta_prime, x_prime, y)


def maximal_matching_problem(delta: int) -> Problem:
    """The maximal matching encoding of Appendix A.

    White: M O^{Δ-1} | P^Δ.  Black: M [OP]^{Δ-1} | O^Δ.  Its black diagram
    is the single edge P → O (verified in the tests, matching the paper).
    """
    if delta < 2:
        raise InvalidParameterError(f"Δ must be ≥ 2, got {delta}")
    white = Constraint.from_condensed(
        [
            CondensedConfiguration(_slots(("M", 1), ("O", delta - 1))),
            CondensedConfiguration(_slots(("P", delta),)),
        ]
    )
    black = Constraint.from_condensed(
        [
            CondensedConfiguration(_slots(("M", 1), ("OP", delta - 1))),
            CondensedConfiguration(_slots(("O", delta),)),
        ]
    )
    return Problem(
        alphabet=frozenset("MOP"),
        white=white,
        black=black,
        name=f"MM_{delta}",
    )


def xy_relaxation_config_map(
    delta: int, x: int, y: int, x2: int, y2: int
) -> dict[tuple[Label, ...], tuple[Label, ...]]:
    """The Observation 4.3 witness: Π_Δ(x₂,y₂) relaxes Π_Δ(x,y) for
    x₂ ≥ x, y₂ ≥ y.

    Returns an ordered-configuration map implementing the paper's
    conversion (turn surplus O into X, surplus P into O or X), checkable
    with :func:`repro.formalism.relaxations.is_relaxation_via_config_map`.
    """
    validate_xy_parameters(delta, x, y)
    validate_xy_parameters(delta, x2, y2)
    if x2 < x or y2 < y:
        raise InvalidParameterError(
            f"Observation 4.3 needs x₂ ≥ x and y₂ ≥ y; got "
            f"({x},{y}) -> ({x2},{y2})"
        )

    def counts(labels: dict[str, int]) -> tuple[Label, ...]:
        flat: list[Label] = []
        for label, count in labels.items():
            flat.extend([label] * count)
        return tuple(sorted(flat))

    mapping: dict[tuple[Label, ...], tuple[Label, ...]] = {}
    # Type 1: X^{y-1} M O^{Δ-y}  →  X^{y2-1} M O^{Δ-y2}
    mapping[counts({"X": y - 1, "M": 1, "O": delta - y})] = counts(
        {"X": y2 - 1, "M": 1, "O": delta - y2}
    )
    # Type 2: X^y O^x P^{Δ-y-x}  →  X^{y2} O^{x2} P^{Δ-y2-x2}
    mapping[counts({"X": y, "O": x, "P": delta - y - x})] = counts(
        {"X": y2, "O": x2, "P": delta - y2 - x2}
    )
    # Type 3: X^y Z O^{Δ-y-1}  →  X^{y2} Z O^{Δ-y2-1}
    mapping[counts({"X": y, "Z": 1, "O": delta - y - 1})] = counts(
        {"X": y2, "Z": 1, "O": delta - y2 - 1}
    )
    return mapping


def matching_sequence_problems(delta: int, x: int, y: int, steps: int) -> list[Problem]:
    """The Corollary 4.6 lower bound sequence Π_Δ(x,y), Π_Δ(x+y,y), …

    Valid while x + (steps+1)·y ≤ Δ; raises otherwise, mirroring the
    corollary's hypothesis.
    """
    if x + (steps + 1) * y > delta:
        raise InvalidParameterError(
            f"Corollary 4.6 needs x + (k+1)y ≤ Δ; got x={x}, y={y}, "
            f"k={steps}, Δ={delta}"
        )
    return [pi_matching(delta, x + index * y, y) for index in range(steps + 1)]


def is_white_configuration_matched(config: Configuration, y: int) -> bool:
    """Classify a Π_Δ(x,y) white configuration: does it represent a node
    matched y times (type 1), an unmatched covered node (type 2) or a node
    excused by a Z pointer (type 3)?  Returns True for type 1."""
    return config.count("M") == 1
