"""Classic locally checkable problems in the black-white formalism.

These encodings are the standard ones from the round elimination
literature; the paper references them as special cases and baselines
(sinkless orientation [BFH+16, BKK+23], proper coloring, MIS §6.1).
"""

from __future__ import annotations

from repro.formalism.configurations import CondensedConfiguration
from repro.formalism.constraints import Constraint
from repro.formalism.problems import Problem
from repro.problems.ruling_sets import pi_ruling
from repro.utils import InvalidParameterError


def sinkless_orientation_problem(delta: int) -> Problem:
    """Sinkless orientation on Δ-regular graphs.

    Half-edge labels O (edge points away from the node) and I (towards).
    White (node, arity Δ): at least one outgoing edge — O [IO]^{Δ-1}.
    Black (edge, arity 2): consistent orientation — exactly one O, i.e.
    the configuration {O, I}.
    """
    if delta < 2:
        raise InvalidParameterError(f"Δ must be ≥ 2, got {delta}")
    white = Constraint.from_condensed(
        [
            CondensedConfiguration(
                [frozenset("O")] + [frozenset("IO")] * (delta - 1)
            )
        ]
    )
    black = Constraint.from_condensed(
        [CondensedConfiguration([frozenset("O"), frozenset("I")])]
    )
    return Problem(
        alphabet=frozenset("IO"),
        white=white,
        black=black,
        name=f"SO_{delta}",
    )


def proper_coloring_problem(delta: int, colors: int) -> Problem:
    """Proper c-coloring on Δ-regular graphs.

    A node outputs its color on every incident half-edge (white: i^Δ);
    an edge requires distinct colors (black: {i,j}, i ≠ j).
    """
    if delta < 2:
        raise InvalidParameterError(f"Δ must be ≥ 2, got {delta}")
    if colors < 1:
        raise InvalidParameterError(f"c must be ≥ 1, got {colors}")
    names = [f"c{i}" for i in range(1, colors + 1)]
    white = Constraint.from_condensed(
        [
            CondensedConfiguration([frozenset([name])] * delta)
            for name in names
        ]
    )
    black_configs = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            black_configs.append(
                CondensedConfiguration([frozenset([first]), frozenset([second])])
            )
    black = Constraint.from_condensed(black_configs)
    return Problem(
        alphabet=frozenset(names),
        white=white,
        black=black,
        name=f"COL_{delta}({colors})",
    )


def mis_family_problem(delta: int) -> Problem:
    """The Π-family problem corresponding to MIS.

    §6.1: MIS is the α-arbdefective c-colored β-ruling set with α = 0,
    c = 1, β = 1; after the Lemma 6.3 conversion the relevant family
    member is Π_Δ((α+1)c, β) = Π_Δ(1, 1).
    """
    return pi_ruling(delta, 1, 1)


def outdegree_dominating_set_problem(delta: int, alpha: int) -> Problem:
    """α-outdegree dominating sets (§6.1: β = 1, c = 1).

    The corresponding family member is Π_Δ((α+1)·1, 1).
    """
    if alpha < 0:
        raise InvalidParameterError(f"α must be ≥ 0, got {alpha}")
    return pi_ruling(delta, alpha + 1, 1)
