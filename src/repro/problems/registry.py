"""Name-based registry for the paper's problem families.

Lets examples and benchmarks construct problems from specification strings
(``"matching:Δ=4,x=0,y=1"``) and keeps a single source of truth for which
families the library implements.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.formalism.problems import Problem
from repro.problems.arbdefective import pi_arbdefective, sinkless_coloring_problem
from repro.problems.classic import (
    mis_family_problem,
    outdegree_dominating_set_problem,
    proper_coloring_problem,
    sinkless_orientation_problem,
)
from repro.problems.matching import maximal_matching_problem, pi_matching
from repro.problems.ruling_sets import pi_ruling
from repro.utils import InvalidParameterError

FAMILIES: dict[str, Callable[..., Problem]] = {
    "matching": pi_matching,
    "maximal-matching": maximal_matching_problem,
    "arbdefective": pi_arbdefective,
    "ruling-set": pi_ruling,
    "sinkless-orientation": sinkless_orientation_problem,
    "sinkless-coloring": sinkless_coloring_problem,
    "coloring": proper_coloring_problem,
    "mis": mis_family_problem,
    "outdegree-dominating": outdegree_dominating_set_problem,
}


def available_families() -> list[str]:
    """Sorted names of constructible families."""
    return sorted(FAMILIES)


def build_problem(family: str, **parameters: int) -> Problem:
    """Construct a problem by family name and keyword parameters.

    Example: ``build_problem("matching", delta=4, x=0, y=1)``.
    """
    try:
        constructor = FAMILIES[family]
    except KeyError:
        raise InvalidParameterError(
            f"unknown family {family!r}; available: {available_families()}"
        ) from None
    return constructor(**parameters)
