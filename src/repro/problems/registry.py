"""Name-based registry for the paper's problem families.

Lets examples, benchmarks and the :mod:`repro.api` façade construct
problems from specification strings (``"matching:Δ=4,x=0,y=1"``) and
keeps a single source of truth for which families the library implements.

A *spec string* is ``family`` or ``family:key=value,key=value,...``.
Keys accept the paper's notation as aliases (``Δ`` for ``delta``, ``α``
for ``alpha``, ``β`` for ``beta``, ``c`` for ``colors``); values are
integers.  Errors name the available families and, once a family is
fixed, its expected parameter names — so a typo in a benchmark config is
diagnosable without opening this file.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable

from repro.formalism.problems import Problem
from repro.problems.arbdefective import pi_arbdefective, sinkless_coloring_problem
from repro.problems.classic import (
    mis_family_problem,
    outdegree_dominating_set_problem,
    proper_coloring_problem,
    sinkless_orientation_problem,
)
from repro.problems.matching import (
    maximal_matching_problem,
    pi_matching,
    validate_xy_parameters,
)
from repro.problems.ruling_sets import pi_ruling
from repro.utils import InvalidParameterError

FAMILIES: dict[str, Callable[..., Problem]] = {
    "matching": pi_matching,
    "maximal-matching": maximal_matching_problem,
    "arbdefective": pi_arbdefective,
    "ruling-set": pi_ruling,
    "sinkless-orientation": sinkless_orientation_problem,
    "sinkless-coloring": sinkless_coloring_problem,
    "coloring": proper_coloring_problem,
    "mis": mis_family_problem,
    "outdegree-dominating": outdegree_dominating_set_problem,
}

#: Paper-notation aliases accepted in spec strings and keyword parameters.
PARAMETER_ALIASES: dict[str, str] = {
    "Δ": "delta",
    "δ": "delta",
    "Δ'": "delta_prime",
    "Δ′": "delta_prime",
    "α": "alpha",
    "β": "beta",
    "c": "colors",
}


def available_families() -> list[str]:
    """Sorted names of constructible families."""
    return sorted(FAMILIES)


def family_parameters(family: str) -> list[str]:
    """The parameter names a family's constructor expects, in order."""
    constructor = _constructor(family)
    return list(inspect.signature(constructor).parameters)


def _constructor(family: str) -> Callable[..., Problem]:
    try:
        return FAMILIES[family]
    except KeyError:
        raise InvalidParameterError(
            f"unknown problem family {family!r}; available families: "
            f"{', '.join(available_families())}"
        ) from None


#: Lightweight per-parameter lower bounds, checkable without constructing
#: the (combinatorially expanding) formalism problem.
_PARAMETER_MINIMUMS = {
    "delta": 2,
    "delta_prime": 1,
    "colors": 1,
    "beta": 1,
    "y": 1,
    "x": 0,
    "alpha": 0,
}


def validate_parameters(family: str, parameters: dict[str, int]) -> None:
    """Cheap range validation of normalized parameters.

    Constructing a formalism problem expands condensed configurations —
    exponential in Δ — so façade code validates ranges here instead of
    building and discarding the problem.  Only parameters that are
    present are checked; the constructor remains the authority when the
    problem is actually built.
    """
    for name, value in parameters.items():
        minimum = _PARAMETER_MINIMUMS.get(name)
        if minimum is not None and value < minimum:
            raise InvalidParameterError(
                f"family {family!r} parameter {name}={value} is out of "
                f"range (need {name} ≥ {minimum})"
            )
    if family == "matching" and {"delta", "x", "y"} <= set(parameters):
        validate_xy_parameters(
            parameters["delta"], parameters["x"], parameters["y"]
        )


def normalize_parameters(family: str, parameters: dict) -> dict[str, int]:
    """Resolve aliases and validate names against the family's constructor.

    Raises :class:`InvalidParameterError` naming the unknown key and the
    expected parameter names when a key matches neither a constructor
    parameter nor an alias for one; values must pass the lightweight
    range checks of :func:`validate_parameters`.
    """
    expected = family_parameters(family)
    normalized: dict[str, int] = {}
    for key, value in parameters.items():
        name = PARAMETER_ALIASES.get(key, key)
        if name not in expected:
            raise InvalidParameterError(
                f"family {family!r} has no parameter {key!r}; expected "
                f"parameters: {', '.join(expected)} (aliases: "
                f"{', '.join(sorted(PARAMETER_ALIASES))})"
            )
        if name in normalized:
            raise InvalidParameterError(
                f"parameter {name!r} given twice for family {family!r}"
            )
        normalized[name] = value
    validate_parameters(family, normalized)
    return normalized


def parse_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Split a spec string into (family, normalized parameters).

    ``"matching:Δ=4,x=0,y=1"`` → ``("matching", {"delta": 4, "x": 0,
    "y": 1})``.  The family must exist and every key must name one of its
    constructor parameters (directly or via a paper-notation alias).
    """
    family, _, rest = spec.partition(":")
    family = family.strip()
    _constructor(family)  # fail fast with the family-listing message
    parameters: dict[str, int] = {}
    if rest.strip():
        for item in rest.split(","):
            key, eq, text = item.partition("=")
            key = key.strip()
            if not eq or not key or not text.strip():
                raise InvalidParameterError(
                    f"malformed parameter {item!r} in spec {spec!r}; expected "
                    f"key=value with keys from: "
                    f"{', '.join(family_parameters(family))}"
                )
            try:
                value = int(text)
            except ValueError:
                raise InvalidParameterError(
                    f"parameter {key!r} in spec {spec!r} has non-integer "
                    f"value {text.strip()!r}"
                ) from None
            parameters[key] = value
    return family, normalize_parameters(family, parameters)


def build_problem(family: str, **parameters: int) -> Problem:
    """Construct a problem by family name and keyword parameters.

    Example: ``build_problem("matching", delta=4, x=0, y=1)``.  Keyword
    aliases (``Δ``, ``α``, ``β``, ``c``) are accepted; missing required
    parameters raise with the expected names listed.
    """
    constructor = _constructor(family)
    normalized = normalize_parameters(family, parameters)
    try:
        # Bind explicitly so only missing/extra-argument errors are
        # translated; a TypeError raised *inside* the constructor is a
        # real defect and must propagate with its traceback.
        inspect.signature(constructor).bind(**normalized)
    except TypeError:
        raise InvalidParameterError(
            f"family {family!r} expects parameters "
            f"({', '.join(family_parameters(family))}); got "
            f"({', '.join(sorted(normalized)) or 'none'})"
        ) from None
    return constructor(**normalized)


def build_problem_from_spec(spec: str) -> Problem:
    """Construct a problem from a spec string like ``"matching:Δ=4,x=0,y=1"``."""
    family, parameters = parse_spec(spec)
    return build_problem(family, **parameters)
