"""The arbdefective coloring family Π_Δ(c) (paper §5, Definition 5.2).

The α-arbdefective c-coloring problem asks for a c-coloring of the nodes
plus an orientation of the monochromatic edges in which every node has
outdegree at most α.  Lemma 5.3 ([BBKO22]) turns any α-arbdefective
c-coloring into a Π_Δ((α+1)c) solution in 0 rounds, so lower bounds for the
family transfer to arbdefective coloring.

Labels: X plus ℓ(C) for every non-empty C ⊆ {1,…,c} (encoded ``{1,3}``).
White (arity Δ): ℓ(C)^{Δ-x} X^x with x = |C|−1, one per C.
Black (arity 2): ℓ(C₁)ℓ(C₂) for disjoint non-empty C₁, C₂; X L for every L.

The family is a *fixed point* under round elimination when c ≤ Δ
(Lemma 5.4), which the test-suite verifies mechanically at small sizes.
"""

from __future__ import annotations

from itertools import chain, combinations

from repro.formalism.configurations import CondensedConfiguration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.labels import color_label, color_label_members
from repro.formalism.problems import Problem
from repro.utils import InvalidParameterError

MAX_EXPLICIT_COLORS = 6


def nonempty_color_subsets(colors: int) -> list[frozenset[int]]:
    """All non-empty subsets of {1..colors}, smallest first."""
    universe = range(1, colors + 1)
    return [
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(universe, size) for size in range(1, colors + 1)
        )
    ]


def arbdefective_alphabet(colors: int) -> frozenset[Label]:
    """Σ of Π_Δ(c): {X} ∪ {ℓ(C) : ∅ ≠ C ⊆ [c]}."""
    return frozenset(
        ["X"] + [color_label(subset) for subset in nonempty_color_subsets(colors)]
    )


def pi_arbdefective(delta: int, colors: int) -> Problem:
    """The problem Π_Δ(c) of Definition 5.2.

    ``colors`` is the paper's c — in applications c = (α+1)·c_base after
    Lemma 5.3's conversion.  The alphabet has 2^c labels; sizes above
    ``MAX_EXPLICIT_COLORS`` are rejected to keep constructions explicit.
    """
    if delta < 2:
        raise InvalidParameterError(f"Δ must be ≥ 2, got {delta}")
    if colors < 1:
        raise InvalidParameterError(f"c must be ≥ 1, got {colors}")
    if colors > MAX_EXPLICIT_COLORS:
        raise InvalidParameterError(
            f"c = {colors} exceeds the explicit-construction cap "
            f"{MAX_EXPLICIT_COLORS} (alphabet would have 2^c labels)"
        )

    subsets = nonempty_color_subsets(colors)
    white_condensed = []
    for subset in subsets:
        x = len(subset) - 1
        if delta - x < 1:
            # ℓ(C)^{Δ-x} needs at least one ℓ(C); subsets too large for Δ
            # contribute no configuration.
            continue
        label = color_label(subset)
        slots = [frozenset([label])] * (delta - x) + [frozenset(["X"])] * x
        white_condensed.append(CondensedConfiguration(slots))
    white = Constraint.from_condensed(white_condensed)

    alphabet = arbdefective_alphabet(colors)
    black_configs = []
    for first in subsets:
        for second in subsets:
            if first & second:
                continue
            black_configs.append(
                CondensedConfiguration(
                    [
                        frozenset([color_label(first)]),
                        frozenset([color_label(second)]),
                    ]
                )
            )
    for label in sorted(alphabet):
        black_configs.append(
            CondensedConfiguration([frozenset(["X"]), frozenset([label])])
        )
    black = Constraint.from_condensed(black_configs)

    return Problem(
        alphabet=alphabet,
        white=white,
        black=black,
        name=f"Π_{delta}({colors})",
    )


def sinkless_coloring_problem(delta: int) -> Problem:
    """Sinkless coloring: Π_Δ(Δ), the (Δ−1)-arbdefective 1-coloring case.

    §1.1 notes sinkless coloring (equivalent to sinkless orientation up to
    one round) arises from the ruling-set family at β = 0, α = Δ−1, c = 1;
    after the Lemma 5.3 conversion that is Π_Δ((α+1)·c) = Π_Δ(Δ).
    """
    return pi_arbdefective(delta, delta)


def coloring_from_configuration(config_label: Label) -> frozenset[int]:
    """Decode which colors a ℓ(C) label carries (helper for extraction)."""
    if config_label == "X":
        raise InvalidParameterError("X carries no colors")
    return color_label_members(config_label)


def arbdefective_to_family_labels(
    graph,
    color_of: dict[object, int],
    orientation: set[tuple[object, object]],
    alpha: int,
) -> dict[tuple[object, object], Label]:
    """Lemma 5.3's 0-round conversion, executed on a concrete solution.

    Given an α-arbdefective c-coloring of ``graph`` (a color per node plus
    an orientation of the monochromatic edges with outdegree ≤ α), produce
    half-edge labels for Π_Δ((α+1)c): node v with color q and outdegree j
    labels its outgoing monochromatic edges X and every other incident
    edge ℓ(C_v), where C_v is a (j+1)-subset of the dedicated color block
    B_q = {(q−1)(α+1)+1, …, q(α+1)}.  The white constraint
    ℓ(C)^{Δ-x} X^x (x = |C|−1) holds with exact counts because
    |C_v| − 1 = j; the black constraint holds because blocks of distinct
    colors are disjoint and every monochromatic edge carries X on its tail
    side (X is compatible with everything).

    ``orientation`` contains (tail, head) pairs for monochromatic edges.
    Returns labels keyed by the directed half-edge (node, neighbor).
    """
    outgoing: dict[object, set[object]] = {node: set() for node in graph.nodes}
    for tail, head in orientation:
        if not graph.has_edge(tail, head):
            raise InvalidParameterError(f"oriented pair {(tail, head)} is not an edge")
        if color_of[tail] != color_of[head]:
            raise InvalidParameterError(
                f"orientation contains bichromatic edge {(tail, head)}"
            )
        outgoing[tail].add(head)
    labels: dict[tuple[object, object], Label] = {}
    for node in graph.nodes:
        color = color_of[node]
        if len(outgoing[node]) > alpha:
            raise InvalidParameterError(
                f"node {node!r} has outdegree {len(outgoing[node])} > α = {alpha}"
            )
        base = (color - 1) * (alpha + 1)
        outdegree = len(outgoing[node])
        chosen = frozenset(range(base + 1, base + outdegree + 2))
        chosen_label = color_label(chosen)
        for neighbor in graph.neighbors(node):
            if neighbor in outgoing[node]:
                labels[(node, neighbor)] = "X"
            else:
                labels[(node, neighbor)] = chosen_label
    return labels
