"""The arbdefective colored ruling set family Π_Δ(c,β) (paper §6).

An α-arbdefective c-colored β-ruling set is a node subset S carrying an
α-arbdefective c-coloring of its induced subgraph such that every node
outside S has a member of S within distance β.  The family contains MIS
(α = 0, c = 1, β = 1), (2,β)-ruling sets, arbdefective colorings (β = 0)
and sinkless coloring (β = 0, c = 1, α = Δ−1) as special cases (§6.1).

Definition 6.2 extends Π_Δ(c) (Definition 5.2) with pointer labels P_i and
U_i for 1 ≤ i ≤ β: a node at distance i from S outputs P_i on one edge
(towards S) and U_i elsewhere.  On the black side P_i and U_i are
compatible with X, with every ℓ(C) and among themselves as follows:
P_i U_j allowed iff j < i, and U_i U_j always.

On U_i ℓ(C): the configuration list in Definition 6.2 spells out
``P_i ℓ(C)``; the accompanying bullet ("we make P_i *and U_i* compatible
with all the labels of Π_Δ(c)") and Figure 2's diagram (which contains the
edge P_2 → U_2, impossible without U_i ℓ(C)) show the U_i ℓ(C)
configurations are intended as well, so this construction includes them.
The Lemma 6.6 proof relies on the same compatibilities (type-2/type-3
arguments), which the executable version in
:mod:`repro.analysis.ruling_peeling` exercises.
"""

from __future__ import annotations

from repro.formalism.configurations import CondensedConfiguration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.labels import color_label
from repro.formalism.problems import Problem
from repro.problems.arbdefective import (
    arbdefective_alphabet,
    nonempty_color_subsets,
    pi_arbdefective,
)
from repro.utils import InvalidParameterError


def pointer_label(index: int) -> Label:
    """The P_i label."""
    return f"P{index}"


def unpointed_label(index: int) -> Label:
    """The U_i label."""
    return f"U{index}"


def ruling_alphabet(colors: int, beta: int) -> frozenset[Label]:
    """Σ of Π_Δ(c,β): the Π_Δ(c) alphabet plus P_i, U_i for 1 ≤ i ≤ β."""
    extra = [pointer_label(i) for i in range(1, beta + 1)]
    extra += [unpointed_label(i) for i in range(1, beta + 1)]
    return arbdefective_alphabet(colors) | frozenset(extra)


def pi_ruling(delta: int, colors: int, beta: int) -> Problem:
    """The problem Π_Δ(c,β) of Definition 6.2.

    For β = 0 this is exactly Π_Δ(c) (Definition 5.2); for β ≥ 1 the
    pointer machinery described in the module docstring is added.
    """
    if beta < 0:
        raise InvalidParameterError(f"β must be ≥ 0, got {beta}")
    if beta == 0:
        return pi_arbdefective(delta, colors)
    if delta < 2:
        raise InvalidParameterError(f"Δ must be ≥ 2, got {delta}")

    base = pi_arbdefective(delta, colors)
    alphabet = ruling_alphabet(colors, beta)

    # White constraint: the Π_Δ(c) configurations plus P_i U_i^{Δ-1}.
    white_configs = set(base.white.configurations)
    white_extra = [
        CondensedConfiguration(
            [frozenset([pointer_label(i)])]
            + [frozenset([unpointed_label(i)])] * (delta - 1)
        )
        for i in range(1, beta + 1)
    ]
    white = Constraint(
        white_configs | {c for cc in white_extra for c in cc.expand()}
    )

    # Black constraint: Π_Δ(c) black configurations, with X L extended to
    # the new labels, plus the pointer compatibilities.
    black_condensed = []
    subsets = nonempty_color_subsets(colors)
    for first in subsets:
        for second in subsets:
            if first & second:
                continue
            black_condensed.append(
                CondensedConfiguration(
                    [
                        frozenset([color_label(first)]),
                        frozenset([color_label(second)]),
                    ]
                )
            )
    for label in sorted(alphabet):
        black_condensed.append(
            CondensedConfiguration([frozenset(["X"]), frozenset([label])])
        )
    for i in range(1, beta + 1):
        for j in range(1, i):
            black_condensed.append(
                CondensedConfiguration(
                    [
                        frozenset([pointer_label(i)]),
                        frozenset([unpointed_label(j)]),
                    ]
                )
            )
    for i in range(1, beta + 1):
        for subset in subsets:
            black_condensed.append(
                CondensedConfiguration(
                    [
                        frozenset([pointer_label(i)]),
                        frozenset([color_label(subset)]),
                    ]
                )
            )
            # U_i ℓ(C): see the module docstring for why these are included.
            black_condensed.append(
                CondensedConfiguration(
                    [
                        frozenset([unpointed_label(i)]),
                        frozenset([color_label(subset)]),
                    ]
                )
            )
    for i in range(1, beta + 1):
        for j in range(i, beta + 1):
            black_condensed.append(
                CondensedConfiguration(
                    [
                        frozenset([unpointed_label(i)]),
                        frozenset([unpointed_label(j)]),
                    ]
                )
            )
    black = Constraint.from_condensed(black_condensed)

    return Problem(
        alphabet=alphabet,
        white=white,
        black=black,
        name=f"Π_{delta}({colors},{beta})",
    )


def ruling_set_to_family_labels(
    graph,
    ruling_set: set,
    color_of: dict[object, int],
    orientation: set[tuple[object, object]],
    alpha: int,
    beta: int,
) -> dict[tuple[object, object], Label]:
    """Lemma 6.3's β-round conversion, executed on a concrete solution.

    Given an α-arbdefective c-colored β-ruling set (S = ``ruling_set``
    with its coloring/orientation), label half-edges for Π_Δ((α+1)c, β):
    nodes of S use the Lemma 5.3 conversion; a node at distance i from S
    (1 ≤ i ≤ β) points with P_i along one shortest path towards S and
    outputs U_i elsewhere.
    """
    import networkx as nx

    from repro.problems.arbdefective import arbdefective_to_family_labels

    if not ruling_set:
        raise InvalidParameterError("the ruling set must be non-empty")
    distances = nx.multi_source_dijkstra_path_length(graph, set(ruling_set))
    too_far = [node for node, dist in distances.items() if dist > beta]
    if too_far or len(distances) < graph.number_of_nodes():
        raise InvalidParameterError(
            f"nodes {too_far or 'disconnected ones'} are farther than β = {beta} from S"
        )

    inside = graph.subgraph(ruling_set)
    inside_labels = arbdefective_to_family_labels(
        inside, {v: color_of[v] for v in ruling_set}, orientation, alpha
    )

    outdegree_in_s = {node: 0 for node in ruling_set}
    for tail, _head in orientation:
        outdegree_in_s[tail] += 1

    labels: dict[tuple[object, object], Label] = {}
    for node in graph.nodes:
        dist = distances[node]
        if dist == 0:
            # Recompute the node's ℓ(C_v) with the same rule as
            # arbdefective_to_family_labels, so in-S and out-of-S edges
            # carry a consistent label (the white constraint fixes exact
            # counts: ℓ(C_v)^{Δ-j} X^j with |C_v| = j+1).
            base = _block_base(color_of[node], alpha)
            chosen_label = color_label(
                range(base + 1, base + outdegree_in_s[node] + 2)
            )
            for neighbor in graph.neighbors(node):
                if neighbor in ruling_set:
                    labels[(node, neighbor)] = inside_labels[(node, neighbor)]
                else:
                    labels[(node, neighbor)] = chosen_label
        else:
            parent = min(
                (
                    neighbor
                    for neighbor in graph.neighbors(node)
                    if distances[neighbor] == dist - 1
                ),
                key=str,
            )
            for neighbor in graph.neighbors(node):
                if neighbor == parent:
                    labels[(node, neighbor)] = pointer_label(dist)
                else:
                    labels[(node, neighbor)] = unpointed_label(dist)
    return labels


def _block_base(color: int, alpha: int) -> int:
    return (color - 1) * (alpha + 1)
