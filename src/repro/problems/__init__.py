"""The paper's problem families (§4-§6, Appendix A) and classic problems."""

from repro.problems.arbdefective import (
    arbdefective_alphabet,
    arbdefective_to_family_labels,
    nonempty_color_subsets,
    pi_arbdefective,
    sinkless_coloring_problem,
)
from repro.problems.classic import (
    mis_family_problem,
    outdegree_dominating_set_problem,
    proper_coloring_problem,
    sinkless_orientation_problem,
)
from repro.problems.matching import (
    maximal_matching_problem,
    matching_sequence_problems,
    pi_matching,
    pi_matching_endpoint,
    xy_relaxation_config_map,
)
from repro.problems.registry import available_families, build_problem
from repro.problems.ruling_sets import (
    pi_ruling,
    pointer_label,
    ruling_alphabet,
    ruling_set_to_family_labels,
    unpointed_label,
)

__all__ = [
    "arbdefective_alphabet",
    "arbdefective_to_family_labels",
    "available_families",
    "build_problem",
    "maximal_matching_problem",
    "matching_sequence_problems",
    "mis_family_problem",
    "nonempty_color_subsets",
    "outdegree_dominating_set_problem",
    "pi_arbdefective",
    "pi_matching",
    "pi_matching_endpoint",
    "pi_ruling",
    "pointer_label",
    "proper_coloring_problem",
    "ruling_alphabet",
    "ruling_set_to_family_labels",
    "sinkless_coloring_problem",
    "sinkless_orientation_problem",
    "unpointed_label",
    "xy_relaxation_config_map",
]
