"""The digest-keyed report cache: in-memory LRU over an on-disk tier.

Same tiering discipline as the exploration engine's
:class:`~repro.roundelim.explore.store.ProblemStore`, applied to whole
request results: entries are keyed by the canonical request digest
(:func:`~repro.service.protocol.request_digest`), the memory tier is a
capacity-bounded LRU, and — when rooted on a directory — every record is
written through as canonical JSON under ``root/reports/<digest>.json``,
so a killed-and-restarted daemon serves every previously computed answer
from disk, byte-identical (the kill-and-restart test's property).

Cached values are plain JSON dicts (``{"kind", "record"}``), never live
objects: what the cache returns is exactly what went over the wire.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils import InvalidParameterError
from repro.utils.serialization import canonical_dumps, write_json

CACHE_SCHEMA = "repro.service/cached-v1"
MANIFEST_SCHEMA = "repro.service/manifest-v1"


@dataclass
class CacheStats:
    """Where responses came from during a cache's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stored: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered by either tier (0.0 when idle)."""
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.memory_hits + self.disk_hits) / lookups

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stored": self.stored,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }


@dataclass
class ReportCache:
    """Two-tier (LRU + on-disk) cache of canonical request results."""

    capacity: int = 1024
    root: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise InvalidParameterError("cache capacity must be >= 1")
        if self.root is not None:
            self.root = Path(self.root)
            (self.root / "reports").mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, digest: str) -> Path:
        return self.root / "reports" / f"{digest}.json"

    def lookup(self, digest: str) -> dict | None:
        """The cached entry, or None (counts a miss).

        Entries are ``{"kind", "record", "record_json"}`` —
        ``record_json`` is the record's canonical serialization, computed
        once per store/load so repeat responses can splice pre-rendered
        bytes instead of re-encoding the record on every hit.
        """
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            self.stats.memory_hits += 1
            return entry
        if self.root is not None:
            target = self._path(digest)
            if target.exists():
                loaded = json.loads(target.read_text())
                entry = {
                    "kind": loaded["kind"],
                    "record": loaded["record"],
                    "record_json": canonical_dumps(loaded["record"]),
                }
                self._remember(digest, entry)
                self.stats.disk_hits += 1
                return entry
        self.stats.misses += 1
        return None

    def record(self, digest: str, kind: str, record: dict) -> dict:
        """Store one computed result in both tiers; returns the entry."""
        entry = {
            "kind": kind,
            "record": record,
            "record_json": canonical_dumps(record),
        }
        self._remember(digest, entry)
        self.stats.stored += 1
        if self.root is not None:
            write_json(
                self._path(digest),
                {
                    "schema": CACHE_SCHEMA,
                    "digest": digest,
                    "kind": kind,
                    "record": record,
                },
            )
        return entry

    def _remember(self, digest: str, entry: dict) -> None:
        self._entries[digest] = entry
        self._entries.move_to_end(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def flush(self) -> Path | None:
        """Write the shutdown manifest (entry census + stats) to disk.

        Records are written through on every :meth:`record`, so flushing
        is about leaving a consistent marker: the manifest names how many
        reports the directory holds and the final counters, and its
        presence tells a restarted daemon the previous shutdown was
        graceful.  No-op (returns None) for a memory-only cache.
        """
        if self.root is None:
            return None
        reports = sorted(path.stem for path in (self.root / "reports").glob("*.json"))
        return write_json(
            self.root / "manifest.json",
            {
                "schema": MANIFEST_SCHEMA,
                "reports": len(reports),
                "stats": self.stats.as_dict(),
            },
        )
