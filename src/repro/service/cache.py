"""The digest-keyed report cache: in-memory LRU over an on-disk tier.

Same tiering discipline as the exploration engine's
:class:`~repro.roundelim.explore.store.ProblemStore`, applied to whole
request results: entries are keyed by the canonical request digest
(:func:`~repro.service.protocol.request_digest`), the memory tier is a
capacity-bounded LRU, and — when rooted on a directory — every record is
written through as canonical JSON under ``root/reports/<digest>.json``,
so a killed-and-restarted daemon serves every previously computed answer
from disk, byte-identical (the kill-and-restart test's property).

The disk tier is crash-safe (:mod:`repro.reliability.atomic`): entries
are written atomically with checksum footers, a corrupt entry found at
lookup time is quarantined and treated as a miss (the caller recomputes;
it never crashes a request), and opening a root whose shutdown manifest
is missing — an ungraceful shutdown — sweeps and validates every entry
first.  The manifest doubles as a dirty marker: it is removed on the
first write after open and rewritten by :meth:`ReportCache.flush`, so
only a graceful shutdown leaves the trusted-state marker behind.

Cached values are plain JSON dicts (``{"kind", "record"}``), never live
objects: what the cache returns is exactly what went over the wire.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.reliability.atomic import (
    CorruptEntryError,
    open_with_recovery,
    quarantine_entry,
    read_checked_json,
    write_checked_json,
)
from repro.reliability.faults import FaultClock, InjectedFault
from repro.utils import InvalidParameterError
from repro.utils.serialization import canonical_dumps

CACHE_SCHEMA = "repro.service/cached-v1"
MANIFEST_SCHEMA = "repro.service/manifest-v1"


@dataclass
class CacheStats:
    """Where responses came from during a cache's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stored: int = 0
    evictions: int = 0
    disk_evictions: int = 0
    expired: int = 0
    quarantined: int = 0
    write_failures: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered by either tier (0.0 when idle)."""
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.memory_hits + self.disk_hits) / lookups

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stored": self.stored,
            "evictions": self.evictions,
            "disk_evictions": self.disk_evictions,
            "expired": self.expired,
            "quarantined": self.quarantined,
            "write_failures": self.write_failures,
            "hit_rate": round(self.hit_rate, 6),
        }


@dataclass
class ReportCache:
    """Two-tier (LRU + on-disk) cache of canonical request results.

    The disk tier is bounded like the memory tier: ``max_disk_bytes``
    caps the total size of ``root/reports/`` (oldest-mtime entries are
    evicted first after each write-through), and ``ttl_seconds`` expires
    entries by file age (checked at lookup and during the post-write
    sweep).  Both default to ``None`` — unbounded, the pre-existing
    behavior — and cost nothing when unset.  Eviction and expiry only
    unlink committed entries, so crash-safety is untouched; the memory
    tier is not TTL'd (it is capacity-bounded and process-scoped).
    ``clock`` is injectable for deterministic TTL tests.
    """

    capacity: int = 1024
    root: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    fault_clock: FaultClock | None = None
    max_disk_bytes: int | None = None
    ttl_seconds: float | None = None
    clock: Callable[[], float] = time.time

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise InvalidParameterError("cache capacity must be >= 1")
        if self.max_disk_bytes is not None and self.max_disk_bytes < 1:
            raise InvalidParameterError("max_disk_bytes must be >= 1")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise InvalidParameterError("ttl_seconds must be > 0")
        self.recovery = {"graceful": True, "checked": 0, "quarantined": 0,
                         "tmp_removed": 0}
        if self.root is not None:
            self.root = Path(self.root)
            self.recovery = open_with_recovery(self.root, ("reports",))
            self.stats.quarantined += self.recovery["quarantined"]
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, digest: str) -> Path:
        return self.root / "reports" / f"{digest}.json"

    def lookup(self, digest: str) -> dict | None:
        """The cached entry, or None (counts a miss).

        Entries are ``{"kind", "record", "record_json"}`` —
        ``record_json`` is the record's canonical serialization, computed
        once per store/load so repeat responses can splice pre-rendered
        bytes instead of re-encoding the record on every hit.  A corrupt
        disk entry is quarantined and reported as a miss: the caller
        recomputes, corruption never propagates into a response.
        """
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            self.stats.memory_hits += 1
            return entry
        if self.root is not None:
            target = self._path(digest)
            if target.exists():
                if self._is_expired(target):
                    self._mark_dirty()
                    target.unlink(missing_ok=True)
                    self.stats.expired += 1
                    self.stats.misses += 1
                    return None
                try:
                    loaded = read_checked_json(target)
                    entry = {
                        "kind": loaded["kind"],
                        "record": loaded["record"],
                        "record_json": canonical_dumps(loaded["record"]),
                    }
                except (CorruptEntryError, KeyError, TypeError):
                    quarantine_entry(target, self.root)
                    self.stats.quarantined += 1
                else:
                    self._remember(digest, entry)
                    self.stats.disk_hits += 1
                    return entry
        self.stats.misses += 1
        return None

    def record(self, digest: str, kind: str, record: dict) -> dict:
        """Store one computed result in both tiers; returns the entry.

        A failed disk write (full disk, injected storage fault) degrades
        durability, not availability: the memory entry still serves this
        process, the failure is counted, and the answer is simply
        recomputed after a restart.
        """
        entry = {
            "kind": kind,
            "record": record,
            "record_json": canonical_dumps(record),
        }
        self._remember(digest, entry)
        self.stats.stored += 1
        if self.root is not None:
            self._mark_dirty()
            try:
                write_checked_json(
                    self._path(digest),
                    {
                        "schema": CACHE_SCHEMA,
                        "digest": digest,
                        "kind": kind,
                        "record": record,
                    },
                    fault_clock=self.fault_clock,
                    site="cache.write",
                )
            except (InjectedFault, OSError):
                self.stats.write_failures += 1
            else:
                self._enforce_disk_bounds()
        return entry

    def _is_expired(self, path: Path) -> bool:
        if self.ttl_seconds is None:
            return False
        try:
            age = self.clock() - path.stat().st_mtime
        except OSError:
            return False
        return age > self.ttl_seconds

    def _enforce_disk_bounds(self) -> None:
        """Expire by age, then evict oldest-first past the byte budget.

        Runs after each successful write-through (never on the lookup hot
        path) and only when a bound is configured.  Unlinking committed
        entries is the only mutation, so the atomic-write guarantees are
        untouched; the dirty marker is already down here (``record``
        dropped it before writing).
        """
        if self.max_disk_bytes is None and self.ttl_seconds is None:
            return
        entries = []
        for path in (self.root / "reports").glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        if self.ttl_seconds is not None:
            now = self.clock()
            kept = []
            for mtime, name, size, path in entries:
                if now - mtime > self.ttl_seconds:
                    path.unlink(missing_ok=True)
                    self.stats.expired += 1
                else:
                    kept.append((mtime, name, size, path))
            entries = kept
        if self.max_disk_bytes is not None:
            total = sum(size for _mtime, _name, size, _path in entries)
            for _mtime, _name, size, path in sorted(entries):
                if total <= self.max_disk_bytes:
                    break
                path.unlink(missing_ok=True)
                self.stats.disk_evictions += 1
                total -= size

    def _mark_dirty(self) -> None:
        """Drop the graceful-shutdown marker before the first mutation.

        While the cache is live its directory is not in a trusted state;
        removing the manifest now means a crash before :meth:`flush`
        forces the next open through the recovery sweep.
        """
        if not self._dirty:
            self._dirty = True
            (self.root / "manifest.json").unlink(missing_ok=True)

    def _remember(self, digest: str, entry: dict) -> None:
        self._entries[digest] = entry
        self._entries.move_to_end(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def flush(self) -> Path | None:
        """Write the shutdown manifest (entry census + stats) to disk.

        Records are written through on every :meth:`record`, so flushing
        is about leaving a consistent marker: the manifest names how many
        reports the directory holds and the final counters, and its
        presence tells a restarted daemon the previous shutdown was
        graceful.  No-op (returns None) for a memory-only cache; a failed
        manifest write is counted and swallowed — the next open simply
        takes the recovery path.
        """
        if self.root is None:
            return None
        reports = sorted(path.stem for path in (self.root / "reports").glob("*.json"))
        try:
            target = write_checked_json(
                self.root / "manifest.json",
                {
                    "schema": MANIFEST_SCHEMA,
                    "reports": len(reports),
                    "stats": self.stats.as_dict(),
                },
                fault_clock=self.fault_clock,
                site="cache.manifest",
            )
        except (InjectedFault, OSError):
            self.stats.write_failures += 1
            return None
        self._dirty = False
        return target
