"""Digest-keyed solve service: a long-running daemon over :mod:`repro.api`.

The service canonicalizes each request to a content digest, coalesces
concurrent identical requests into a single in-flight solve, answers
repeats from a two-tier (LRU + on-disk) report cache, and fans fresh
work across a batching worker pool.  Responses carry the same canonical
bytes a direct :func:`repro.api.solve` call produces.

Layers (transport-agnostic core, thin skins):

* :mod:`repro.service.protocol` — versioned wire protocol + request digests
* :mod:`repro.service.cache` — the digest-keyed two-tier report cache
* :mod:`repro.service.worker` — pure request execution + process pool
* :mod:`repro.service.server` — :class:`SolveService` (dedup + dispatch)
* :mod:`repro.service.httpd` — stdlib HTTP transport
* :mod:`repro.service.client` — retrying stdlib client (timeouts, backoff)
* :mod:`repro.service.cli` — ``python -m repro.service`` (serve/request/status)

Reliability (worker supervision, fault injection, crash-safe storage)
comes from :mod:`repro.reliability` and is threaded through every layer.
"""

from repro.service.cache import CacheStats, ReportCache
from repro.service.client import ServiceClient, ServiceUnavailableError
from repro.service.httpd import ServiceHTTPServer, start_http_service
from repro.service.protocol import (
    KINDS,
    REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
    STATUS_SCHEMA,
    ProtocolError,
    canonicalize_request,
    error_response,
    ok_response,
    request_digest,
    roundelim_request,
    solve_request,
)
from repro.service.server import (
    ServiceClosedError,
    ServiceOverloadedError,
    SolveService,
)
from repro.service.worker import WorkerPool, compute_result

__all__ = [
    "KINDS",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "STATUS_SCHEMA",
    "CacheStats",
    "ProtocolError",
    "ReportCache",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceHTTPServer",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "SolveService",
    "WorkerPool",
    "canonicalize_request",
    "compute_result",
    "error_response",
    "ok_response",
    "request_digest",
    "roundelim_request",
    "solve_request",
    "start_http_service",
]
