"""A resilient stdlib client for the solve service — no dependencies.

:class:`ServiceClient` wraps the endpoints and the request builders, so
tests, benchmarks and the CLI all speak to the daemon the same way::

    client = ServiceClient("http://127.0.0.1:8642")
    response = client.solve("matching:delta=3", algorithm="matching:proposal")
    canonical_dumps(response["report"])   # == direct solve bytes

Transport discipline (requests are idempotent by digest, so retrying is
always safe):

* separate **connect** and **read** timeouts — a dead host fails fast,
  a slow solve gets the full read budget, and neither can hang a caller
  forever (the urllib default this class replaced had no timeout);
* transient failures (refused/dropped connections, timeouts, HTTP 503)
  are retried with **exponential backoff + jitter**; a 503 carrying a
  ``Retry-After`` header (the daemon's overload shedding) is honored in
  both RFC 9110 forms — delta-seconds and HTTP-date — and the hint
  replaces the computed backoff for that attempt (clamped to the cap);
* when the retry budget is exhausted, :class:`ServiceUnavailableError`
  is raised carrying ``attempts``.

Protocol- and library-level failures still come back as
``status="error"`` response dicts (the server maps every exception to
one), so callers branch on the response, not on exception types.

``sleep`` and ``rng`` are injectable so tests (and the chaos harness)
run retry schedules without real waiting; a
:class:`~repro.reliability.faults.FaultClock` injects connection drops
at the ``client.send`` / ``client.recv`` sites.
"""

from __future__ import annotations

import datetime
import email.utils
import http.client
import json
import random
import socket
import time
import urllib.parse

from repro.reliability.faults import FaultClock, TransportDropFault, check_fault
from repro.service.protocol import roundelim_request, solve_request
from repro.utils import InvalidParameterError, ReproError
from repro.utils.serialization import canonical_dumps

#: Read timeout (seconds): the budget for the solve itself.
DEFAULT_TIMEOUT = 60.0

#: Connect timeout (seconds): detecting a dead host should be fast.
DEFAULT_CONNECT_TIMEOUT = 5.0

#: Transient-failure retries after the first attempt.
DEFAULT_RETRIES = 3

#: First backoff delay (seconds); doubles per retry up to the cap.
DEFAULT_BACKOFF = 0.2
DEFAULT_MAX_BACKOFF = 5.0

#: Jitter fraction: each delay is scaled by 1 + jitter * U[0, 1).
DEFAULT_JITTER = 0.25


def _parse_retry_after(value: str, now: float) -> float | None:
    """Both RFC 9110 ``Retry-After`` forms, as seconds from ``now``.

    ``Retry-After: 120`` (delta-seconds) parses directly; ``Retry-After:
    Fri, 31 Dec 1999 23:59:59 GMT`` (HTTP-date) becomes the remaining
    wait relative to ``now``.  Anything unparsable is no hint (``None``);
    a date already in the past yields a non-positive delta, which the
    backoff schedule floors at zero.
    """
    try:
        return float(value)
    except ValueError:
        pass
    try:
        when = email.utils.parsedate_to_datetime(value)
    except (TypeError, ValueError):
        return None
    if when.tzinfo is None:
        # RFC 9110 requires GMT; a missing zone designator means GMT too.
        when = when.replace(tzinfo=datetime.timezone.utc)
    return when.timestamp() - now


class ServiceUnavailableError(ReproError):
    """The service could not be reached; carries the attempt count."""

    code = "service-unavailable"

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


class ServiceClient:
    """HTTP client for one solve-service daemon."""

    def __init__(
        self,
        url: str,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
        jitter: float = DEFAULT_JITTER,
        sleep=time.sleep,
        rng: random.Random | None = None,
        clock=time.time,
        fault_clock: FaultClock | None = None,
    ) -> None:
        if retries < 0:
            raise InvalidParameterError("retries must be >= 0")
        parsed = urllib.parse.urlsplit(url.rstrip("/"))
        if parsed.scheme != "http" or not parsed.hostname:
            raise InvalidParameterError(
                f"service URL must be http://host[:port], got {url!r}"
            )
        self.url = url.rstrip("/")
        self.host = parsed.hostname
        self.port = parsed.port if parsed.port is not None else 80
        self.base_path = parsed.path.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.sleep = sleep
        self.rng = rng if rng is not None else random.Random()
        self.clock = clock
        self.fault_clock = fault_clock
        self.stats = {"attempts": 0, "retried": 0}

    # -- transport ---------------------------------------------------------

    def _delay(self, attempt: int, hint: float | None) -> float:
        """The pre-retry delay: server hint if given, else backoff+jitter."""
        if hint is not None:
            return min(max(hint, 0.0), self.max_backoff)
        base = min(self.backoff * (2 ** (attempt - 1)), self.max_backoff)
        return base * (1.0 + self.jitter * self.rng.random())

    def _attempt(self, path: str, payload: dict | None):
        """One HTTP round-trip: ``(status, retry_after_hint, body_text)``."""
        if check_fault(self.fault_clock, "client.send") is not None:
            raise ConnectionResetError("injected connection drop before request")
        method = "GET" if payload is None else "POST"
        body = None
        headers = {}
        if payload is not None:
            body = canonical_dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        try:
            connection.connect()
            # Connected: widen the socket deadline from the connect
            # budget to the read budget (the solve itself may be slow).
            if connection.sock is not None:
                connection.sock.settimeout(self.timeout)
            connection.request(method, self.base_path + path, body, headers)
            response = connection.getresponse()
            status = response.status
            retry_after = response.getheader("Retry-After")
            if check_fault(self.fault_clock, "client.recv") is not None:
                raise ConnectionResetError(
                    "injected connection drop mid-response"
                )
            text = response.read().decode("utf-8", errors="replace")
        finally:
            connection.close()
        hint = None
        if retry_after is not None:
            hint = _parse_retry_after(retry_after, self.clock())
        return status, hint, text

    def _call(self, path: str, payload: dict | None = None) -> dict:
        target = f"{self.url}{path}"
        attempts = 0
        last_failure = "no attempt made"
        while attempts <= self.retries:
            attempts += 1
            self.stats["attempts"] += 1
            hint = None
            try:
                status, hint, text = self._attempt(path, payload)
            except (
                TransportDropFault,
                ConnectionError,
                TimeoutError,
                socket.timeout,
                socket.gaierror,
                http.client.HTTPException,
                OSError,
            ) as error:
                last_failure = f"{type(error).__name__}: {error}"
            else:
                if status == 503:
                    # Back-pressure (overloaded / shutting down): honor
                    # the daemon's Retry-After and try again.
                    last_failure = f"HTTP 503 from {target}"
                else:
                    try:
                        return json.loads(text)
                    except json.JSONDecodeError as error:
                        # Not the protocol at all (wrong port, a proxy):
                        # retrying will not help.
                        raise ServiceUnavailableError(
                            f"non-protocol HTTP {status} from {target}: "
                            f"{text[:200]}",
                            attempts=attempts,
                        ) from error
            if attempts <= self.retries:
                self.stats["retried"] += 1
                self.sleep(self._delay(attempts, hint))
        raise ServiceUnavailableError(
            f"cannot reach solve service at {target} after {attempts} "
            f"attempts: {last_failure}",
            attempts=attempts,
        )

    # -- endpoints ---------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """POST one raw request-v1 dict; returns the response-v1 dict."""
        return self._call("/v1/request", payload)

    def solve(self, problem, *, algorithm, engine=None, solver=None, n=None,
              seed=0, max_rounds=10_000, check=True, options=None) -> dict:
        """Solve via the service (mirrors :func:`repro.api.solve`)."""
        return self.request(solve_request(
            problem, algorithm=algorithm, engine=engine, solver=solver, n=n,
            seed=seed, max_rounds=max_rounds, check=check, options=options,
        ))

    def roundelim(self, problem, *, op, budget=None, engine=None) -> dict:
        """Run one round-elimination operator step via the service."""
        kwargs = {"op": op}
        if budget is not None:
            kwargs["budget"] = budget
        if engine is not None:
            kwargs["engine"] = engine
        return self.request(roundelim_request(problem, **kwargs))

    def status(self) -> dict:
        return self._call("/v1/status")

    def protocol(self) -> dict:
        return self._call("/v1/protocol")

    def shutdown(self) -> dict:
        return self._call("/v1/shutdown", {})

    def ping(self) -> bool:
        """True when the daemon answers its status endpoint."""
        try:
            self.status()
            return True
        except ServiceUnavailableError:
            return False
