"""A urllib client for the solve service — no dependencies, one class.

:class:`ServiceClient` wraps the four endpoints and the request
builders, so tests, benchmarks and the CLI all speak to the daemon the
same way::

    client = ServiceClient("http://127.0.0.1:8642")
    response = client.solve("matching:delta=3", algorithm="matching:proposal")
    canonical_dumps(response["report"])   # == direct solve bytes

Transport failures raise :class:`ServiceUnavailableError`; protocol- and
library-level failures come back as ``status="error"`` response dicts
(the server maps every exception to one), so callers branch on the
response, not on exception types.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.service.protocol import roundelim_request, solve_request
from repro.utils import ReproError
from repro.utils.serialization import canonical_dumps

DEFAULT_TIMEOUT = 60.0


class ServiceUnavailableError(ReproError):
    """The service could not be reached (connection refused, timeout)."""

    code = "service-unavailable"


class ServiceClient:
    """HTTP client for one solve-service daemon."""

    def __init__(self, url: str, *, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _call(self, path: str, payload: dict | None = None) -> dict:
        target = f"{self.url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = canonical_dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(target, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            # Error responses are still protocol JSON; surface them as
            # response dicts, not exceptions.
            body = error.read().decode("utf-8", errors="replace")
            try:
                return json.loads(body)
            except json.JSONDecodeError:
                raise ServiceUnavailableError(
                    f"non-protocol HTTP {error.code} from {target}: {body[:200]}"
                ) from error
        except (urllib.error.URLError, TimeoutError, ConnectionError) as error:
            raise ServiceUnavailableError(
                f"cannot reach solve service at {target}: {error}"
            ) from error

    # -- endpoints ---------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """POST one raw request-v1 dict; returns the response-v1 dict."""
        return self._call("/v1/request", payload)

    def solve(self, problem, *, algorithm, engine=None, n=None, seed=0,
              max_rounds=10_000, check=True, options=None) -> dict:
        """Solve via the service (mirrors :func:`repro.api.solve`)."""
        return self.request(solve_request(
            problem, algorithm=algorithm, engine=engine, n=n, seed=seed,
            max_rounds=max_rounds, check=check, options=options,
        ))

    def roundelim(self, problem, *, op, budget=None, engine=None) -> dict:
        """Run one round-elimination operator step via the service."""
        kwargs = {"op": op}
        if budget is not None:
            kwargs["budget"] = budget
        if engine is not None:
            kwargs["engine"] = engine
        return self.request(roundelim_request(problem, **kwargs))

    def status(self) -> dict:
        return self._call("/v1/status")

    def protocol(self) -> dict:
        return self._call("/v1/protocol")

    def shutdown(self) -> dict:
        return self._call("/v1/shutdown", {})

    def ping(self) -> bool:
        """True when the daemon answers its status endpoint."""
        try:
            self.status()
            return True
        except ServiceUnavailableError:
            return False
