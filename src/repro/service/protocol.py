"""The versioned wire protocol of the solve service.

Requests and responses are canonical-JSON dicts with explicit schema
tags, so clients and servers from different commits can refuse each
other loudly instead of mis-parsing silently:

* **request** (``repro.service/request-v1``) — ``kind: "solve"`` carries
  the arguments of :func:`repro.api.solve` (problem spec string or
  ``{"family", "parameters"}`` dict, algorithm, engine, n, seed,
  max_rounds, check, options); ``kind: "roundelim"`` carries a problem
  (spec string or a ``repro.normalize/v1`` payload), an operator
  (``R`` / ``R_bar`` / ``RE``), a search budget and a kernel engine.
* **response** (``repro.service/response-v1``) — ``status: "ok"`` with
  the result body, or ``status: "error"`` with a stable error code
  (:func:`repro.api.error_code`).  For solve requests the ``report``
  field is exactly ``json.loads(SolveReport.canonical_json())``, so
  ``canonical_dumps(response["report"])`` is byte-identical to the
  report a direct :func:`repro.api.solve` call renders — the property
  the PR 4 differential oracles (and CI's parity gate) compare.

:func:`canonicalize_request` is the heart of request dedup: it
alias-resolves and validates every field against the façade registries
and returns a *canonical* request dict, and :func:`request_digest`
hashes that dict **excluding the engine** — engines are observationally
equivalent by contract (reports exclude them from canonical JSON, the
store memoizes across them), so a batched-engine request must hit the
cache entry a object-engine request filled.
"""

from __future__ import annotations

from repro.api import (
    DEFAULT_ENGINE,
    ProblemSpec,
    resolve_engine,
)
from repro.api.facade import _resolve_pair
from repro.formalism.normalize import (
    NORMAL_FORM_SCHEMA,
    normal_form,
    problem_from_payload,
)
from repro.roundelim.explore.store import OPERATORS
from repro.roundelim.operators import (
    DEFAULT_ENGINE as DEFAULT_RE_ENGINE,
    ENGINES as RE_ENGINES,
)
from repro.solvers.backends import BACKENDS, DEFAULT_BACKEND
from repro.utils import ReproError
from repro.utils.serialization import result_digest, to_jsonable

REQUEST_SCHEMA = "repro.service/request-v1"
RESPONSE_SCHEMA = "repro.service/response-v1"
STATUS_SCHEMA = "repro.service/status-v1"

#: Request kinds the protocol defines.
KINDS = ("solve", "roundelim")

#: Default popped-configuration budget for roundelim requests (matches
#: the explorer's default step budget).
DEFAULT_ROUNDELIM_BUDGET = 100_000

#: Hex length of request digests.  Cache keys are identities, not
#: fingerprints, so they get twice the default digest length.
DIGEST_LENGTH = 32


class ProtocolError(ReproError):
    """A request violates the wire protocol (not merely the library API)."""

    code = "bad-request"

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


def _require_type(request: dict, field: str, types, default=None, required=False):
    value = request.get(field, default)
    if required and value is None:
        raise ProtocolError(f"request field {field!r} is required", "bad-field")
    if value is not None and not isinstance(value, types):
        raise ProtocolError(
            f"request field {field!r} has type {type(value).__name__}, "
            f"expected {'/'.join(t.__name__ for t in types)}",
            "bad-field",
        )
    # bool is an int subclass; reject it where an actual count is meant.
    if isinstance(value, bool) and bool not in types:
        raise ProtocolError(f"request field {field!r} must not be a bool", "bad-field")
    return value


def _parse_problem_field(problem) -> ProblemSpec:
    """A solve request's problem: spec string or {"family", "parameters"}."""
    if isinstance(problem, str):
        return ProblemSpec.parse(problem)
    if isinstance(problem, dict):
        family = problem.get("family")
        parameters = problem.get("parameters", {})
        if not isinstance(family, str) or not isinstance(parameters, dict):
            raise ProtocolError(
                "a structured problem needs a 'family' string and a "
                "'parameters' dict",
                "bad-field",
            )
        if not all(isinstance(key, str) for key in parameters):
            raise ProtocolError("problem parameter names must be strings", "bad-field")
        return ProblemSpec.create(family, **parameters)
    raise ProtocolError(
        f"request field 'problem' has type {type(problem).__name__}, "
        f"expected a spec string or a family/parameters dict",
        "bad-field",
    )


def _canonical_solver(request: dict) -> str:
    solver = _require_type(
        request, "solver", (str,), default=DEFAULT_BACKEND
    )
    if solver not in BACKENDS:
        raise ProtocolError(
            f"unknown solver backend {solver!r}; known: {sorted(BACKENDS)}",
            "bad-field",
        )
    return solver


def _canonicalize_solve(request: dict) -> dict:
    spec = _parse_problem_field(
        _require_type(request, "problem", (str, dict), required=True)
    )
    algorithm = _require_type(request, "algorithm", (str,), required=True)
    engine = resolve_engine(
        _require_type(request, "engine", (str,), default=DEFAULT_ENGINE)
    )
    # Re-runs the façade's own pairing so a request that cannot solve is
    # rejected at the door (typed, with the family's alternatives listed)
    # instead of burning a worker slot.
    spec, algo = _resolve_pair(spec, algorithm)
    n = _require_type(request, "n", (int,))
    seed = _require_type(request, "seed", (int,), default=0)
    max_rounds = _require_type(request, "max_rounds", (int,), default=10_000)
    check = _require_type(request, "check", (bool,), default=True)
    options = _require_type(request, "options", (dict,), default={})
    solver = _canonical_solver(request)
    if n is not None and n < 1:
        raise ProtocolError(f"request field 'n' must be >= 1, got {n}", "bad-field")
    if max_rounds < 1:
        raise ProtocolError(
            f"request field 'max_rounds' must be >= 1, got {max_rounds}", "bad-field"
        )
    for key in options:
        if not isinstance(key, str):
            raise ProtocolError("option keys must be strings", "bad-field")
    return {
        "schema": REQUEST_SCHEMA,
        "kind": "solve",
        "problem": spec.spec,
        "algorithm": algo.name,
        "engine": engine.name,
        "solver": solver,
        "n": n,
        "seed": seed,
        "max_rounds": max_rounds,
        "check": check,
        "options": to_jsonable(dict(sorted(options.items()))),
    }


def _canonicalize_roundelim(request: dict) -> dict:
    problem = _require_type(request, "problem", (str, dict), required=True)
    if isinstance(problem, str):
        built = ProblemSpec.parse(problem).build()
    else:
        payload = dict(problem)
        schema = payload.pop("schema", NORMAL_FORM_SCHEMA)
        if schema != NORMAL_FORM_SCHEMA:
            raise ProtocolError(
                f"unsupported problem payload schema {schema!r}; expected "
                f"{NORMAL_FORM_SCHEMA!r}",
                "unsupported-schema",
            )
        built = problem_from_payload(payload)
    form = normal_form(built)
    op = _require_type(request, "op", (str,), required=True)
    if op not in OPERATORS:
        raise ProtocolError(
            f"unknown operator {op!r}; known: {list(OPERATORS)}", "bad-field"
        )
    budget = _require_type(
        request, "budget", (int,), default=DEFAULT_ROUNDELIM_BUDGET
    )
    if budget < 1:
        raise ProtocolError(
            f"request field 'budget' must be >= 1, got {budget}", "bad-field"
        )
    engine = _require_type(request, "engine", (str,), default=DEFAULT_RE_ENGINE)
    if engine not in RE_ENGINES:
        raise ProtocolError(
            f"unknown roundelim engine {engine!r}; known: {sorted(RE_ENGINES)}",
            "bad-field",
        )
    solver = _canonical_solver(request)
    return {
        "schema": REQUEST_SCHEMA,
        "kind": "roundelim",
        "problem_digest": form.digest,
        "problem": form.payload,
        "op": op,
        "budget": budget,
        "engine": engine,
        "solver": solver,
    }


def canonicalize_request(request) -> dict:
    """Validate a raw request dict and return its canonical form.

    Raises :class:`ProtocolError` for wire-shape violations and the
    façade's typed errors (:class:`~repro.api.SpecError`,
    :class:`~repro.api.UnknownAlgorithmError`, ...) for library-level
    ones — each carries the stable code the error response reports.
    """
    if not isinstance(request, dict):
        raise ProtocolError(
            f"a request must be a JSON object, got {type(request).__name__}"
        )
    schema = request.get("schema")
    if schema != REQUEST_SCHEMA:
        raise ProtocolError(
            f"unsupported request schema {schema!r}; this server speaks "
            f"{REQUEST_SCHEMA!r}",
            "unsupported-schema",
        )
    kind = request.get("kind")
    if kind not in KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r}; known kinds: {list(KINDS)}",
            "unknown-kind",
        )
    if kind == "solve":
        return _canonicalize_solve(request)
    return _canonicalize_roundelim(request)


def request_digest(canonical: dict) -> str:
    """The content digest a canonical request is cached and deduped under.

    Excludes the engine and the solver backend: both are observationally
    equivalent by contract (the façade/operator guarantees for engines,
    the differential ``sat`` oracle for solvers), so requests differing
    only in backend share one cache entry and one in-flight solve.
    """
    keyed = {
        key: value
        for key, value in canonical.items()
        if key not in ("engine", "solver")
    }
    return result_digest(keyed, length=DIGEST_LENGTH)


def solve_request(
    problem,
    *,
    algorithm: str,
    engine: str | None = None,
    solver: str | None = None,
    n: int | None = None,
    seed: int = 0,
    max_rounds: int = 10_000,
    check: bool = True,
    options: dict | None = None,
) -> dict:
    """Build a raw ``kind="solve"`` request (mirrors :func:`repro.api.solve`)."""
    if isinstance(problem, ProblemSpec):
        problem = problem.spec
    request = {
        "schema": REQUEST_SCHEMA,
        "kind": "solve",
        "problem": problem,
        "algorithm": algorithm,
        "seed": seed,
        "max_rounds": max_rounds,
        "check": check,
    }
    if engine is not None:
        request["engine"] = engine
    if solver is not None:
        request["solver"] = solver
    if n is not None:
        request["n"] = n
    if options:
        request["options"] = options
    return request


def roundelim_request(
    problem,
    *,
    op: str,
    budget: int = DEFAULT_ROUNDELIM_BUDGET,
    engine: str | None = None,
    solver: str | None = None,
) -> dict:
    """Build a raw ``kind="roundelim"`` request."""
    request = {
        "schema": REQUEST_SCHEMA,
        "kind": "roundelim",
        "problem": problem,
        "op": op,
        "budget": budget,
    }
    if engine is not None:
        request["engine"] = engine
    if solver is not None:
        request["solver"] = solver
    return request


def ok_response(kind: str, digest: str, record: dict, *, cached: bool) -> dict:
    """Assemble a ``status="ok"`` response envelope.

    ``record`` is the cached result body: for ``solve`` it becomes the
    ``report`` field (byte-identical to the direct
    ``SolveReport.canonical_json()``), for ``roundelim`` the ``result``
    field (the store's operator-outcome shape).
    """
    body_field = "report" if kind == "solve" else "result"
    return {
        "schema": RESPONSE_SCHEMA,
        "status": "ok",
        "kind": kind,
        "digest": digest,
        "cached": cached,
        body_field: record,
    }


def render_ok_response(
    kind: str, digest: str, record_json: str, *, cached: bool
) -> str:
    """The canonical-bytes fast path of :func:`ok_response`.

    Splices a pre-rendered canonical record (``canonical_dumps(record)``)
    into the envelope without deserializing or re-serializing it, so a
    cache hit costs a string concatenation rather than a JSON encode of
    the whole report.  The result is byte-identical to
    ``canonical_dumps(ok_response(kind, digest, record, cached=cached))``
    — the envelope's keys are emitted in sorted order with canonical
    separators (pinned by the protocol tests).
    """
    body_field = "report" if kind == "solve" else "result"
    return (
        f'{{"cached":{"true" if cached else "false"},"digest":"{digest}",'
        f'"kind":"{kind}","{body_field}":{record_json},'
        f'"schema":"{RESPONSE_SCHEMA}","status":"ok"}}'
    )


def error_response(
    code: str, message: str, *, retry_after: float | None = None
) -> dict:
    """Assemble a ``status="error"`` response envelope.

    ``retry_after`` (seconds) rides along for back-pressure codes
    (``overloaded``, ``service-closed``); the HTTP layer surfaces it as
    a ``Retry-After`` header and retrying clients honor it.
    """
    error = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {
        "schema": RESPONSE_SCHEMA,
        "status": "error",
        "error": error,
    }
