"""HTTP transport for the solve service (stdlib only).

A thin JSON-over-HTTP skin on :class:`~repro.service.server.SolveService`
using :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which composes with the service's blocking ``submit()`` and
in-flight dedup to give request-level concurrency without any new
dependency.

Endpoints::

    POST /v1/request   body = request-v1 JSON  →  response-v1 JSON
    GET  /v1/status    live counters + registries (status-v1)
    GET  /v1/protocol  the schema tags this server speaks
    POST /v1/shutdown  graceful stop (when enabled), then exits

Every body is canonical JSON.  Error responses use the same envelope as
the protocol layer (``status="error"`` + stable code) with a matching
HTTP status: 400 for client-side codes, 404/405 for routing, 500 for
``internal``, 503 + ``Retry-After`` for back-pressure (``overloaded``,
``service-closed``), 504 for ``timeout``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.protocol import (
    KINDS,
    REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
    STATUS_SCHEMA,
    error_response,
)
from repro.service.server import SolveService
from repro.utils.serialization import canonical_dumps

#: Error codes that are the server's fault, not the client's.
_SERVER_FAULT_CODES = frozenset({"internal", "library-error"})

#: Back-pressure codes: the request was fine, the server just cannot
#: take it *right now* — 503 + Retry-After, and clients retry.
_UNAVAILABLE_CODES = frozenset({"overloaded", "service-closed"})

#: Request body size cap (16 MiB): a serialized problem payload is far
#: smaller; anything bigger is a client error, not a solve.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Retry-After value (seconds) when the envelope carries no hint.
DEFAULT_RETRY_AFTER_HEADER = 1


def _http_status(response: dict) -> int:
    if response.get("status") == "ok":
        return 200
    code = response.get("error", {}).get("code", "internal")
    if code in _UNAVAILABLE_CODES:
        return 503
    if code == "timeout":
        return 504
    return 500 if code in _SERVER_FAULT_CODES else 400


def _retry_after_header(response: dict) -> str | None:
    """The Retry-After value a 503 response advertises (whole seconds)."""
    error = response.get("error", {})
    if error.get("code") not in _UNAVAILABLE_CODES:
        return None
    hint = error.get("retry_after", DEFAULT_RETRY_AFTER_HEADER)
    return str(max(1, int(round(float(hint)))))


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-solve-service/1"

    @property
    def service(self) -> SolveService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(self, payload: dict, status: int | None = None) -> None:
        self._send_raw(
            canonical_dumps(payload),
            status if status is not None else _http_status(payload),
            retry_after=_retry_after_header(payload),
        )

    def _send_raw(
        self, rendered: str, status: int, retry_after: str | None = None
    ) -> None:
        body = (rendered + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        self.end_headers()
        self.wfile.write(body)

    def _read_request_body(self):
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            return None, error_response(
                "bad-request", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, error_response(
                "bad-request", f"request body is not JSON: {error}"
            )

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/v1/request":
            payload, failure = self._read_request_body()
            if failure:
                self._send_json(failure)
                return
            # rendered=True: ok responses arrive as pre-rendered canonical
            # bytes (a cache hit is served without re-encoding the
            # report); errors stay dicts for status-code mapping.
            response = self.service.submit(payload, rendered=True)
            if isinstance(response, str):
                self._send_raw(response, 200)
            else:
                self._send_json(response)
        elif self.path == "/v1/shutdown":
            if not self.server.allow_remote_shutdown:  # type: ignore[attr-defined]
                self._send_json(
                    error_response("forbidden", "remote shutdown is disabled"), 403
                )
                return
            self._send_json({"schema": RESPONSE_SCHEMA, "status": "ok",
                             "kind": "shutdown", "cached": False})
            # shutdown() must come from another thread: it joins the
            # serve_forever loop this handler is running inside.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send_json(
                error_response("not-found", f"no POST endpoint {self.path!r}"), 404
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/v1/status":
            self._send_json(self.service.status())
        elif self.path == "/v1/protocol":
            self._send_json({
                "schema": STATUS_SCHEMA,
                "protocol": {
                    "request": REQUEST_SCHEMA,
                    "response": RESPONSE_SCHEMA,
                    "kinds": list(KINDS),
                },
            })
        else:
            self._send_json(
                error_response("not-found", f"no GET endpoint {self.path!r}"), 404
            )


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SolveService`."""

    daemon_threads = True

    def __init__(
        self,
        service: SolveService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        allow_remote_shutdown: bool = True,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.allow_remote_shutdown = allow_remote_shutdown
        self.verbose = verbose
        super().__init__((host, port), _ServiceHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def run(self) -> None:
        """serve_forever, then close the service (graceful shutdown)."""
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.server_close()
            self.service.close()


def start_http_service(service: SolveService, host="127.0.0.1", port=0, **kw):
    """Bind a server and serve it on a background thread; returns it.

    Convenience for tests and benchmarks: the caller gets a live
    ``server.url`` immediately and stops everything with
    ``server.shutdown()`` + ``thread.join()`` (or just lets the daemon
    thread die with the process).
    """
    server = ServiceHTTPServer(service, host, port, **kw)
    thread = threading.Thread(target=server.run, name="solve-http", daemon=True)
    thread.start()
    return server, thread
