"""Command line for the solve service: ``python -m repro.service``.

Subcommands::

    serve     run the daemon (graceful on SIGINT/SIGTERM)
    request   send one solve/roundelim request to a running daemon
    direct    run the same solve locally through repro.api (for byte cmp)
    status    print a daemon's live counters
    shutdown  stop a daemon gracefully

``serve --port 0 --ready-file F`` binds an ephemeral port and writes
``host port`` to ``F`` once listening, so scripts (CI's service job, the
benchmark) can start the daemon without racing the bind.

``request --report-only`` prints exactly ``canonical_dumps(report)``,
which ``cmp``s clean against ``direct``'s output — the service/direct
byte-parity check as a shell one-liner.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path

from repro import api
from repro.service.client import ServiceClient
from repro.service.httpd import ServiceHTTPServer
from repro.service.server import SolveService
from repro.utils import ReproError
from repro.utils.serialization import canonical_dumps


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Digest-keyed solve service over repro.api",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk cache tier")
    serve.add_argument("--capacity", type=int, default=1024,
                       help="in-memory LRU capacity")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = inline)")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="max requests dispatched per worker batch")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds (stable "
                            "'timeout' wire code when exceeded)")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="bounded queue: shed requests past this many "
                            "in flight with 'overloaded' + Retry-After")
    serve.add_argument("--ready-file", default=None,
                       help="write 'host port' here once listening")
    serve.add_argument("--verbose", action="store_true",
                       help="log HTTP requests to stderr")

    def add_url(p):
        p.add_argument("--url", default="http://127.0.0.1:8642",
                       help="daemon base URL")

    request = sub.add_parser("request", help="send one request to a daemon")
    add_url(request)
    request.add_argument("--json", dest="raw_json", default=None,
                         help="raw request-v1 JSON ('-' reads stdin)")
    request.add_argument("--spec", default=None, help="problem spec string")
    request.add_argument("--algorithm", default=None)
    request.add_argument("--engine", default=None)
    request.add_argument("--n", type=int, default=None)
    request.add_argument("--seed", type=int, default=0)
    request.add_argument("--max-rounds", type=int, default=10_000)
    request.add_argument("--no-check", action="store_true")
    request.add_argument("--report-only", action="store_true",
                         help="print only the canonical report bytes")

    direct = sub.add_parser(
        "direct", help="run the same solve locally (byte-comparison partner)"
    )
    direct.add_argument("--spec", required=True)
    direct.add_argument("--algorithm", required=True)
    direct.add_argument("--engine", default=None)
    direct.add_argument("--n", type=int, default=None)
    direct.add_argument("--seed", type=int, default=0)
    direct.add_argument("--max-rounds", type=int, default=10_000)
    direct.add_argument("--no-check", action="store_true")

    status = sub.add_parser("status", help="print a daemon's status JSON")
    add_url(status)

    shutdown = sub.add_parser("shutdown", help="stop a daemon gracefully")
    add_url(shutdown)

    return parser


def _cmd_serve(args) -> int:
    service = SolveService(
        cache_dir=args.cache_dir,
        capacity=args.capacity,
        jobs=args.jobs,
        batch_size=args.batch_size,
        deadline=args.deadline,
        max_pending=args.max_pending,
    )
    server = ServiceHTTPServer(
        service, args.host, args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    if args.ready_file:
        Path(args.ready_file).write_text(f"{host} {port}\n")
    print(f"solve service listening on http://{host}:{port}", file=sys.stderr)

    def _stop(_signum, _frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    # Signal handlers can only be installed from the main thread; when
    # serve() is driven from a worker thread (tests), skip them — the
    # HTTP shutdown endpoint still stops the server.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _stop)
        signal.signal(signal.SIGTERM, _stop)
    server.run()  # blocks; close() + cache flush happen on the way out
    print("solve service stopped", file=sys.stderr)
    return 0


def _solve_kwargs(args) -> dict:
    return {
        "algorithm": args.algorithm,
        "engine": args.engine,
        "n": args.n,
        "seed": args.seed,
        "max_rounds": args.max_rounds,
        "check": not args.no_check,
    }


def _cmd_request(args) -> int:
    client = ServiceClient(args.url)
    if args.raw_json is not None:
        raw = sys.stdin.read() if args.raw_json == "-" else args.raw_json
        response = client.request(json.loads(raw))
    elif args.spec and args.algorithm:
        response = client.solve(args.spec, **_solve_kwargs(args))
    else:
        print("request needs --json, or --spec with --algorithm",
              file=sys.stderr)
        return 2
    if response.get("status") != "ok":
        print(canonical_dumps(response), file=sys.stderr)
        return 1
    if args.report_only:
        print(canonical_dumps(response["report"]))
    else:
        print(canonical_dumps(response))
    return 0


def _cmd_direct(args) -> int:
    kwargs = _solve_kwargs(args)
    if kwargs["engine"] is None:
        del kwargs["engine"]
    report = api.solve(args.spec, **kwargs)
    print(report.canonical_json())
    return 0


def _cmd_status(args) -> int:
    print(canonical_dumps(ServiceClient(args.url).status()))
    return 0


def _cmd_shutdown(args) -> int:
    response = ServiceClient(args.url).shutdown()
    print(canonical_dumps(response))
    return 0 if response.get("status") == "ok" else 1


_COMMANDS = {
    "serve": _cmd_serve,
    "request": _cmd_request,
    "direct": _cmd_direct,
    "status": _cmd_status,
    "shutdown": _cmd_shutdown,
}


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
