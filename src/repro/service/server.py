"""The solve service core: dedup, cache, dispatch — transport-agnostic.

:class:`SolveService` is the daemon without its socket.  One instance
owns the request pipeline:

1. **canonicalize** — :func:`~repro.service.protocol.canonicalize_request`
   validates the raw dict and resolves every name, so malformed traffic
   is rejected before it can occupy a worker;
2. **cache** — the digest-keyed two-tier
   :class:`~repro.service.cache.ReportCache` answers repeats without any
   computation (the warm path: a dict lookup);
3. **dedup** — concurrent identical requests coalesce onto one in-flight
   entry: exactly one solve runs, every waiter gets its result (the
   ``solves_computed`` counter is the test hook for "exactly one");
4. **dispatch** — a dispatcher thread drains the submission queue in
   batches and runs them on the
   :class:`~repro.reliability.supervise.SupervisedWorkerPool` (inline
   for ``jobs=1``, a supervised process pool otherwise: dead workers
   restart with exactly-once re-dispatch, hung requests resolve to the
   stable ``timeout`` code under ``deadline``).

``submit()`` blocks until its response is ready, which makes the service
trivially correct under any threaded transport (the HTTP layer gives
each connection a thread).  With ``max_pending`` set, excess load is
shed *before* it occupies a queue slot: shedded requests get the stable
``overloaded`` code plus a ``retry_after`` hint instead of unbounded
queueing.  ``close()`` is graceful: pending requests finish, the pool
joins, the cache flushes its manifest.  ``abandon()`` is the opposite —
a simulated daemon kill for crash-recovery tests.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path

from repro.reliability.faults import FaultClock
from repro.reliability.supervise import SupervisedWorkerPool
from repro.service.cache import ReportCache
from repro.service.protocol import (
    STATUS_SCHEMA,
    canonicalize_request,
    error_response,
    ok_response,
    render_ok_response,
    request_digest,
)
from repro.utils import ReproError

#: Dispatcher shutdown sentinel.
_SHUTDOWN = object()

#: The Retry-After hint (seconds) an overloaded response carries.
DEFAULT_RETRY_AFTER = 1.0


class ServiceClosedError(ReproError):
    """The service is shutting down and no longer accepts requests."""

    code = "service-closed"


class ServiceOverloadedError(ReproError):
    """The bounded queue is full; the caller should retry after a delay."""

    code = "overloaded"


class _Pending:
    """One in-flight computation every duplicate requester waits on."""

    __slots__ = ("event", "result", "entry")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: dict | None = None
        self.entry: dict | None = None  # the cache entry, for ok results


class SolveService:
    """A long-running, digest-deduplicating solve service."""

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        capacity: int = 1024,
        jobs: int = 1,
        batch_size: int = 8,
        deadline: float | None = None,
        max_pending: int | None = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
        fault_clock: FaultClock | None = None,
    ) -> None:
        if batch_size < 1:
            raise ReproError("batch_size must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ReproError("max_pending must be >= 1")
        self.batch_size = batch_size
        self.deadline = deadline
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.fault_clock = fault_clock
        self.cache = ReportCache(
            capacity=capacity, root=cache_dir, fault_clock=fault_clock
        )
        self.pool = SupervisedWorkerPool(
            jobs=jobs, deadline=deadline, fault_clock=fault_clock
        )
        self._queue: queue.Queue = queue.Queue()
        self._inflight: dict[str, _Pending] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._started = time.monotonic()
        # Counters are monotone and only loosely ordered across threads;
        # each individual bump happens under the lock or in the single
        # dispatcher thread.
        self.requests = 0
        self.errors = 0
        self.coalesced = 0
        self.solves_computed = 0
        self.batches = 0
        self.shed = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="solve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- request path ------------------------------------------------------

    def submit(self, request, *, rendered: bool = False):
        """Serve one raw request dict; blocks until the response exists.

        With ``rendered=True``, successful responses come back as the
        canonical JSON *string* (spliced from the cache's pre-rendered
        record bytes — the warm path never re-encodes the report);
        error responses are still dicts, so transports can branch on
        the type.  With the default, everything is a response dict.
        """
        with self._lock:
            self.requests += 1
        try:
            canonical = canonicalize_request(request)
        except ReproError as error:
            with self._lock:
                self.errors += 1
            return error_response(
                getattr(error, "code", "bad-request"),
                f"{type(error).__name__}: {error}",
            )
        digest = request_digest(canonical)
        kind = canonical["kind"]
        with self._lock:
            if self._closed:
                self.errors += 1
                return error_response(
                    ServiceClosedError.code, "service is shutting down"
                )
            hit = self.cache.lookup(digest)
            if hit is not None:
                if rendered:
                    return render_ok_response(
                        kind, digest, hit["record_json"], cached=True
                    )
                return ok_response(kind, digest, hit["record"], cached=True)
            pending = self._inflight.get(digest)
            if pending is None:
                if (
                    self.max_pending is not None
                    and len(self._inflight) >= self.max_pending
                ):
                    # Shed before occupying a slot: bounded queues keep
                    # tail latency bounded, and the retry_after hint
                    # (surfaced as Retry-After over HTTP) tells the
                    # client when to come back.
                    self.errors += 1
                    self.shed += 1
                    return error_response(
                        ServiceOverloadedError.code,
                        f"service is at its pending-request limit "
                        f"({self.max_pending}); retry after "
                        f"{self.retry_after}s",
                        retry_after=self.retry_after,
                    )
                pending = _Pending()
                self._inflight[digest] = pending
                self._queue.put((digest, canonical))
            else:
                self.coalesced += 1
        pending.event.wait()
        result = pending.result
        if not result["ok"]:
            with self._lock:
                self.errors += 1
            return error_response(result["code"], result["message"])
        if rendered:
            return render_ok_response(
                kind, digest, pending.entry["record_json"], cached=False
            )
        return ok_response(kind, digest, result["record"], cached=False)

    # -- dispatcher --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        stop = False
        while not stop:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch = [item]
            # Batch whatever else is already queued (deduplicated by
            # construction: only the first requester of a digest enqueues).
            while len(batch) < self.batch_size:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    stop = True
                    break
                batch.append(extra)
            try:
                results = self.pool.run_batch(
                    [canonical for _d, canonical in batch]
                )
            except Exception as error:  # noqa: BLE001 - daemon must survive
                # The supervised pool converts worker failures to result
                # dicts; anything that still escapes must not kill the
                # dispatcher (a dead dispatcher wedges every submit).
                results = [
                    {
                        "ok": False,
                        "code": "internal",
                        "message": f"{type(error).__name__}: {error}",
                    }
                ] * len(batch)
            with self._lock:
                self.solves_computed += len(batch)
                self.batches += 1
                for (digest, canonical), result in zip(batch, results):
                    pending = self._inflight.pop(digest)
                    if result["ok"]:
                        pending.entry = self.cache.record(
                            digest, canonical["kind"], result["record"]
                        )
                    pending.result = result
                    pending.event.set()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: drain, join workers, flush the cache."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join()
        self.pool.close()
        self.cache.flush()

    def abandon(self) -> None:
        """Simulated daemon kill: stop *without* flushing the manifest.

        Crash-recovery tests use this as the controlled stand-in for
        ``kill -9``: the dispatcher stops, workers are torn down, but no
        shutdown manifest is written — so the next open of the cache
        directory must take the recovery path.  Waiters still blocked on
        an in-flight request are released with ``service-closed``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join()
        self.pool.close()
        with self._lock:
            for pending in self._inflight.values():
                pending.result = {
                    "ok": False,
                    "code": ServiceClosedError.code,
                    "message": "service was killed mid-request",
                }
                pending.event.set()
            self._inflight.clear()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        """The live counters (plus the registries, for client discovery)."""
        from repro.api import list_algorithms, list_engines, list_solvers
        from repro.service.protocol import REQUEST_SCHEMA, RESPONSE_SCHEMA

        with self._lock:
            stats = self.cache.stats.as_dict()
            size = len(self.cache)
            return {
                "schema": STATUS_SCHEMA,
                "protocol": {
                    "request": REQUEST_SCHEMA,
                    "response": RESPONSE_SCHEMA,
                },
                "uptime_seconds": round(time.monotonic() - self._started, 6),
                "requests": self.requests,
                "errors": self.errors,
                "coalesced": self.coalesced,
                "solves_computed": self.solves_computed,
                "batches": self.batches,
                "inflight": len(self._inflight),
                "jobs": self.pool.jobs,
                "batch_size": self.batch_size,
                "cache": {
                    **stats,
                    "size": size,
                    "capacity": self.cache.capacity,
                    "on_disk": self.cache.root is not None,
                },
                "reliability": {
                    **self.pool.telemetry(),
                    "deadline": self.deadline,
                    "max_pending": self.max_pending,
                    "shed": self.shed,
                    "cache_recovery": dict(self.cache.recovery),
                    "faults_fired": (
                        len(self.fault_clock.fired)
                        if self.fault_clock is not None
                        else 0
                    ),
                },
                "algorithms": [entry["name"] for entry in list_algorithms()],
                "engines": [entry["name"] for entry in list_engines()],
                "solvers": [entry["name"] for entry in list_solvers()],
            }
