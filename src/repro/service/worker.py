"""The worker side of the service: pure request execution.

:func:`compute_result` is the one function a worker runs — canonical
request in, plain JSON result out, no shared state — so the dispatcher
can execute it inline (``jobs=1``), or ship whole batches of deduplicated
requests to a :class:`multiprocessing.Pool` (``jobs>1``) and merge the
results in task order.  Mirrors the explorer's
:func:`~repro.roundelim.explore.store.compute_step` contract: stateless,
picklable-argument-only, failures returned as data.

A failed request is a *result* (``{"ok": False, "code", "message"}``),
never a worker crash: the dispatcher must be able to resolve every
waiting requester and keep serving.
"""

from __future__ import annotations

import json
import multiprocessing

from repro import api
from repro.api.errors import error_code
from repro.roundelim.explore.store import compute_step
from repro.utils import InvalidParameterError


def compute_result(canonical: dict) -> dict:
    """Execute one canonical request; return ``{"ok", ...}`` JSON.

    For ``solve`` the record is ``json.loads(report.canonical_json())``
    — already in canonical JSON shape, so re-serializing it anywhere
    downstream reproduces the direct façade bytes.  For ``roundelim``
    the record is the store's operator-outcome shape (``status``,
    ``child`` digest, ``child_payload``), with budget exhaustion as an
    outcome rather than an error.
    """
    try:
        if canonical["kind"] == "solve":
            report = api.solve(
                canonical["problem"],
                algorithm=canonical["algorithm"],
                engine=canonical["engine"],
                n=canonical["n"],
                seed=canonical["seed"],
                max_rounds=canonical["max_rounds"],
                check=canonical["check"],
                **canonical["options"],
            )
            record = json.loads(report.canonical_json())
        else:
            record = compute_step(
                canonical["problem"],
                canonical["op"],
                canonical["budget"],
                canonical["engine"],
            )
        return {"ok": True, "kind": canonical["kind"], "record": record}
    except Exception as error:  # noqa: BLE001 - failures are results
        return {
            "ok": False,
            "code": error_code(error),
            "message": f"{type(error).__name__}: {error}",
        }


class WorkerPool:
    """Batch executor: inline when ``jobs=1``, process pool otherwise.

    The pool is created lazily on the first parallel batch (a service
    that only ever serves cache hits should not fork workers), and falls
    back to inline execution when process pools are unavailable — e.g.
    inside a daemonic worker of an outer pool, the same restriction the
    exploration frontier handles.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise InvalidParameterError("worker jobs must be >= 1")
        self.jobs = jobs
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            try:
                self._pool = multiprocessing.Pool(processes=self.jobs)
            except (AssertionError, ValueError, OSError):
                self._pool = False  # pools unavailable here: stay inline
        return self._pool

    def run_batch(self, batch: list[dict]) -> list[dict]:
        """Execute a batch of canonical requests, results in task order."""
        if len(batch) > 1 and self.jobs > 1:
            pool = self._ensure_pool()
            if pool:
                return pool.map(compute_result, batch)
        return [compute_result(canonical) for canonical in batch]

    def close(self) -> None:
        if self._pool:
            self._pool.close()
            self._pool.join()
        self._pool = None
