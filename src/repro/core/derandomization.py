"""Randomized lower bounds via derandomization (paper Appendix C).

Lemma C.2: in the Supported LOCAL model, D_Π(n) ≤ R_Π(2^{3n²}) — i.e. a
randomized algorithm on (lied-about) huge instances can be derandomized on
all size-n instances.  Theorem C.3 is the hypergraph analogue with
2^{4n³}.  Consequently a deterministic lower bound of D rounds at size n
yields a randomized lower bound of D rounds at size 2^{3n²}, which inverts
to R_Π(n) ≥ D_Π(sqrt(log₂(n)/3)).

This module provides three things:

* the instance-counting bounds, both the paper's closed forms and an exact
  enumerator for tiny n (so the 2^{3n²} inequality is itself testable);
* the bound transforms in both directions;
* an executable union-bound derandomizer: given a randomized 0/T-round
  algorithm with bounded seed space and an enumerable instance family, it
  finds one seed that succeeds everywhere — exactly the argument in the
  proof of Lemma C.1.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.utils import CertificateError


def supported_instance_count_bound(n: int) -> float:
    """The paper's bound on Supported LOCAL instances of size n: 2^{3n²}.

    Composition (Appendix C): ≤ 2^{C(n,2)} graphs · n! ≤ 2^{n log n} ID
    assignments (renormalized, since nodes see G) · ≤ 2^{n²} input-edge
    markings.
    """
    return 2.0 ** (3 * n * n)


def supported_instance_count_exact_exponent(n: int) -> float:
    """log₂ of the paper's three factors, kept separate for inspection."""
    graphs = math.comb(n, 2)
    ids = math.log2(math.factorial(n)) if n else 0.0
    inputs = n * n
    return graphs + ids + inputs


def hypergraph_instance_count_bound(n: int) -> float:
    """Theorem C.3's bound for linear hypergraphs: 2^{4n³}."""
    return 2.0 ** (4 * n**3)


def count_labeled_graphs(n: int) -> int:
    """Exact number of labeled graphs on n nodes (tiny n)."""
    return 2 ** math.comb(n, 2)


def count_supported_instances_exact(n: int) -> int:
    """Exact count of (graph, input-subgraph) pairs with IDs {1..n}.

    Enumerates labeled support graphs and, for each, counts input
    subgraphs as 2^{|E|}; ID assignments are normalized away exactly as in
    the paper (nodes recompute IDs from the known G).  Tiny n only.
    """
    if n > 6:
        raise CertificateError(f"exact instance counting capped at n=6, got {n}")
    from itertools import combinations

    pairs = list(combinations(range(n), 2))
    total = 0
    for mask in range(2 ** len(pairs)):
        edge_count = bin(mask).count("1")
        total += 2**edge_count
    return total


def deterministic_bound_to_randomized(
    deterministic_rounds: float, n: int
) -> tuple[float, float]:
    """D_Π(n) ≥ d ⇒ R_Π(2^{3n²}) ≥ d: returns (rounds, instance size)."""
    return deterministic_rounds, supported_instance_count_bound(n)


def randomized_rounds_from_deterministic(
    deterministic_rounds_fn_value: float, n: int
) -> float:
    """Evaluate the inverted transform R_Π(n) ≥ D_Π(√(log₂(n)/3)).

    Given the deterministic bound *value achieved at size √(log₂(n)/3)*,
    the randomized bound at size n is the same value; the framework calls
    this with the deterministic value it certified and reports the
    conservative min (the certified value cannot grow under the lift).
    Concretely we report min(d, √(log₂ n / 3)) — a randomized algorithm
    faster than that would contradict Lemma C.2.
    """
    ceiling = math.sqrt(math.log2(max(n, 2)) / 3)
    return min(deterministic_rounds_fn_value, ceiling)


@dataclass(frozen=True)
class DerandomizationResult:
    """Outcome of the executable union-bound argument."""

    seed: object
    instances_checked: int
    failure_counts: dict

    @property
    def succeeded(self) -> bool:
        return self.seed is not None


def derandomize_by_union_bound(
    instances: Sequence[object],
    seeds: Iterable[object],
    succeeds: Callable[[object, object], bool],
) -> DerandomizationResult:
    """Find one seed succeeding on every instance (Lemma C.1's proof step).

    ``succeeds(instance, seed)`` runs the randomized algorithm with the
    given random bits.  If the per-instance failure probability is below
    1/len(instances), a union bound guarantees some seed works; this
    function finds it (or reports per-seed failure counts for diagnosis).
    """
    failure_counts: dict = {}
    for seed in seeds:
        failures = sum(0 if succeeds(inst, seed) else 1 for inst in instances)
        failure_counts[seed] = failures
        if failures == 0:
            return DerandomizationResult(
                seed=seed,
                instances_checked=len(instances),
                failure_counts=failure_counts,
            )
    return DerandomizationResult(
        seed=None, instances_checked=len(instances), failure_counts=failure_counts
    )


def union_bound_guarantee(
    instance_count: int, failure_probability: float
) -> bool:
    """The arithmetic core: p < 1/#instances ⇒ a good seed exists."""
    return failure_probability * instance_count < 1.0
