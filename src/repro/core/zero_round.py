"""0-round white algorithms and the Theorem 3.2 equivalence.

In the Supported LOCAL model a 0-round white algorithm's output at a white
node v depends only on the support graph G (known to everyone), on v's
identity, and on which of v's incident edges belong to the input graph G′.
We represent such an algorithm as a deterministic function

    (white node, frozenset of input neighbors) → {neighbor: label}

labeling exactly the input edges.  Correctness (paper §2) demands: for
*every* admissible input graph G′ (white degrees ≤ Δ′, black degrees
≤ r′), white nodes of G′-degree exactly Δ′ satisfy the white constraint
and black nodes of G′-degree exactly r′ the black constraint.

Theorem 3.2 says such an algorithm exists iff lift_{Δ,r}(Π) has a
bipartite solution on G.  Both constructive directions of the proof are
implemented here:

* :func:`algorithm_from_lift_solution` — a lift solution yields the
  0-round algorithm that picks, for each Δ′-subset of input edges, a
  choice inside the white constraint (it exists by the lift's white
  condition);
* :func:`lift_solution_from_algorithm` — run the algorithm on every
  Δ′-star G′, collect each edge's observed outputs, and right-close the
  sets w.r.t. Π's black diagram.

The exhaustive checks (:func:`is_correct_zero_round`,
:func:`exists_zero_round_algorithm`) make the equivalence independently
testable on tiny graphs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from itertools import combinations, product

import networkx as nx

from repro.core.lift import LiftedProblem, lift
from repro.formalism.configurations import Configuration, Label
from repro.formalism.problems import Problem
from repro.utils import SimulationError, SolverError

OutputMap = dict[object, Label]  # neighbor → label on that edge


@dataclass
class ZeroRoundWhiteAlgorithm:
    """A deterministic 0-round white algorithm on a fixed support graph."""

    graph: nx.Graph
    delta_prime: int
    rule: Callable[[object, frozenset], OutputMap]

    def run(self, node, input_neighbors: frozenset) -> OutputMap:
        """Labels the input edges incident to ``node``."""
        output = self.rule(node, frozenset(input_neighbors))
        if set(output) != set(input_neighbors):
            raise SimulationError(
                f"algorithm at {node!r} labeled {sorted(output, key=str)} "
                f"instead of its input edges {sorted(input_neighbors, key=str)}"
            )
        return output


def white_and_black(graph: nx.Graph) -> tuple[list, list]:
    """Split a 2-colored graph into white and black node lists."""
    whites, blacks = [], []
    for node, data in graph.nodes(data=True):
        color = data.get("color")
        if color == "white":
            whites.append(node)
        elif color == "black":
            blacks.append(node)
        else:
            raise SolverError(f"node {node!r} lacks a color attribute")
    return sorted(whites, key=str), sorted(blacks, key=str)


def admissible_subgraphs(
    graph: nx.Graph, delta_prime: int, r_prime: int, edge_limit: int = 20
) -> Iterator[frozenset]:
    """All input graphs G′: edge subsets with white degree ≤ Δ′ and black
    degree ≤ r′.  Exhaustive, so capped by ``edge_limit``."""
    edges = sorted(graph.edges, key=str)
    if len(edges) > edge_limit:
        raise SolverError(
            f"exhaustive subgraph enumeration capped at {edge_limit} edges, "
            f"got {len(edges)}"
        )
    whites, _ = white_and_black(graph)
    white_set = set(whites)
    for bits in product((False, True), repeat=len(edges)):
        chosen = frozenset(
            frozenset(edge) for edge, bit in zip(edges, bits) if bit
        )
        degrees: dict = {}
        ok = True
        for edge in chosen:
            for endpoint in edge:
                degrees[endpoint] = degrees.get(endpoint, 0) + 1
                cap = delta_prime if endpoint in white_set else r_prime
                if degrees[endpoint] > cap:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            yield chosen


def evaluate_on_subgraph(
    algorithm: ZeroRoundWhiteAlgorithm, input_edges: frozenset
) -> dict[frozenset, Label]:
    """Run the white algorithm on input graph G′ = ``input_edges``."""
    per_node_inputs: dict = {}
    for edge in input_edges:
        u, v = tuple(edge)
        per_node_inputs.setdefault(u, set()).add(v)
        per_node_inputs.setdefault(v, set()).add(u)
    whites, _ = white_and_black(algorithm.graph)
    labeling: dict[frozenset, Label] = {}
    for node in whites:
        inputs = frozenset(per_node_inputs.get(node, ()))
        if not inputs:
            continue
        output = algorithm.run(node, inputs)
        for neighbor, label in output.items():
            labeling[frozenset((node, neighbor))] = label
    return labeling


def is_correct_zero_round(
    algorithm: ZeroRoundWhiteAlgorithm,
    problem: Problem,
    r_prime: int | None = None,
    edge_limit: int = 20,
) -> bool:
    """Exhaustively verify correctness over every admissible input graph."""
    delta_prime = problem.white_arity
    r_prime = problem.black_arity if r_prime is None else r_prime
    graph = algorithm.graph
    whites, blacks = white_and_black(graph)
    white_set = set(whites)
    for input_edges in admissible_subgraphs(
        graph, delta_prime, r_prime, edge_limit=edge_limit
    ):
        labeling = evaluate_on_subgraph(algorithm, input_edges)
        degrees: dict = {}
        incident: dict = {}
        for edge in input_edges:
            for endpoint in edge:
                degrees[endpoint] = degrees.get(endpoint, 0) + 1
                incident.setdefault(endpoint, []).append(labeling[edge])
        for node, degree in degrees.items():
            if node in white_set:
                if degree == delta_prime and not problem.white.allows_multiset(
                    incident[node]
                ):
                    return False
            else:
                if degree == problem.black_arity and not problem.black.allows_multiset(
                    incident[node]
                ):
                    return False
    return True


def algorithm_from_lift_solution(
    graph: nx.Graph,
    lifted: LiftedProblem,
    lift_solution: dict[frozenset, frozenset],
) -> ZeroRoundWhiteAlgorithm:
    """Theorem 3.2, ⇐ direction: lift solution → 0-round white algorithm.

    ``lift_solution`` maps each support edge to its label-set.  A node with
    exactly Δ′ input edges picks a joint choice inside Π's white constraint
    (guaranteed by the lift white condition); other degrees pick arbitrary
    (deterministically: minimal) members of each edge's set.
    """
    base = lifted.base
    delta_prime = base.white_arity

    def rule(node, input_neighbors: frozenset) -> OutputMap:
        neighbors = sorted(input_neighbors, key=str)
        sets = [lift_solution[frozenset((node, nb))] for nb in neighbors]
        if len(neighbors) != delta_prime:
            return {nb: min(label_set) for nb, label_set in zip(neighbors, sets)}
        choice = _find_white_choice(sets, base)
        if choice is None:
            raise SimulationError(
                f"lift solution violates the white condition at {node!r}: "
                f"no choice over {sets} is in the white constraint"
            )
        return dict(zip(neighbors, choice))

    return ZeroRoundWhiteAlgorithm(
        graph=graph, delta_prime=delta_prime, rule=rule
    )


def _find_white_choice(
    sets: list[frozenset], problem: Problem
) -> tuple[Label, ...] | None:
    for choice in product(*(sorted(s) for s in sets)):
        if problem.white.allows(Configuration(choice)):
            return choice
    return None


def lift_solution_from_algorithm(
    algorithm: ZeroRoundWhiteAlgorithm,
    lifted: LiftedProblem,
) -> dict[frozenset, frozenset]:
    """Theorem 3.2, ⇒ direction: 0-round algorithm → lift solution.

    For every white node and every Δ′-subset of its incident edges, run the
    algorithm on the star input graph consisting of exactly those edges
    (admissible: white degree Δ′, black degrees 1 ≤ r′) and record each
    edge's output; finally right-close every set w.r.t. Π's black diagram.
    """
    graph = algorithm.graph
    delta_prime = lifted.base.white_arity
    raw_sets: dict[frozenset, set[Label]] = {
        frozenset(edge): set() for edge in graph.edges
    }
    whites, _ = white_and_black(graph)
    for node in whites:
        neighbors = sorted(graph.neighbors(node), key=str)
        for subset in combinations(neighbors, delta_prime):
            output = algorithm.run(node, frozenset(subset))
            for neighbor, label in output.items():
                raw_sets[frozenset((node, neighbor))].add(label)
    return {
        edge: lifted.right_close(labels) if labels else frozenset()
        for edge, labels in raw_sets.items()
    }


def check_lift_solution(
    graph: nx.Graph,
    lifted: LiftedProblem,
    solution: dict[frozenset, frozenset],
) -> bool:
    """Validate a label-set assignment against the lift's predicates.

    Only nodes of full degree (Δ for white, r for black) are constrained,
    mirroring the formalism's degree-exact semantics.
    """
    whites, blacks = white_and_black(graph)
    for node in whites:
        sets = [
            solution[frozenset((node, nb))] for nb in graph.neighbors(node)
        ]
        if len(sets) == lifted.delta and not lifted.white_allows(sets):
            return False
    for node in blacks:
        sets = [
            solution[frozenset((node, nb))] for nb in graph.neighbors(node)
        ]
        if len(sets) == lifted.rank and not lifted.black_allows(sets):
            return False
    return True


def zero_round_solvable(
    graph: nx.Graph,
    problem: Problem,
    delta: int | None = None,
    rank: int | None = None,
    *,
    backend: str | None = None,
    budget: int | None = None,
) -> bool:
    """Decide 0-round solvability via the Theorem 3.2 gate.

    Lifts Π to the support graph's (Δ, r) arities and asks the chosen
    solver backend for a bipartite solution — the scalable alternative
    to :func:`exists_zero_round_algorithm`'s brute force over the full
    algorithm space.  ``delta`` / ``rank`` default to the maximum white /
    black degree of the support graph, clamped up to Π's arities (the
    lift requires Δ ≥ Δ′; on supports too sparse for any node to become
    active the clamp keeps the gate defined, and it answers True there).
    """
    whites, blacks = white_and_black(graph)
    if delta is None:
        degrees = (graph.degree(node) for node in whites)
        delta = max(max(degrees, default=0), problem.white_arity)
    if rank is None:
        degrees = (graph.degree(node) for node in blacks)
        rank = max(max(degrees, default=0), problem.black_arity)
    lifted = lift(problem, delta, rank)
    return lifted.solvable_on(graph, backend=backend, budget=budget)


def exists_zero_round_algorithm(
    graph: nx.Graph,
    problem: Problem,
    edge_limit: int = 10,
    space_limit: int = 4_000_000,
) -> bool:
    """Brute-force the full algorithm space (tiny graphs only).

    Independent of Theorem 3.2 — used to test the theorem itself.  An
    algorithm is a choice, for every (white node, input-neighbor subset of
    size ≤ Δ′), of a labeling of those edges; correctness is then checked
    against every admissible input graph.
    """
    delta_prime = problem.white_arity
    r_prime = problem.black_arity
    whites, _ = white_and_black(graph)
    alphabet = sorted(problem.alphabet)

    decision_points: list[tuple[object, tuple]] = []
    for node in whites:
        neighbors = sorted(graph.neighbors(node), key=str)
        for size in range(1, min(delta_prime, len(neighbors)) + 1):
            for subset in combinations(neighbors, size):
                decision_points.append((node, subset))

    option_lists = [
        list(product(alphabet, repeat=len(subset)))
        for _node, subset in decision_points
    ]
    total = 1
    for options in option_lists:
        total *= len(options)
        if total > space_limit:
            raise SolverError(
                f"algorithm space exceeds {space_limit}; shrink the instance"
            )

    for assignment in product(*option_lists):
        table = {
            (node, frozenset(subset)): dict(zip(subset, labels))
            for (node, subset), labels in zip(decision_points, assignment)
        }

        def rule(node, input_neighbors: frozenset, _table=table) -> OutputMap:
            return dict(_table[(node, input_neighbors)])

        candidate = ZeroRoundWhiteAlgorithm(
            graph=graph, delta_prime=delta_prime, rule=rule
        )
        if is_correct_zero_round(
            candidate, problem, r_prime=r_prime, edge_limit=edge_limit
        ):
            return True
    return False
