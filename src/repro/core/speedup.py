"""Executable round elimination step in Supported LOCAL (Lemma B.1).

Lemma B.1: on a support graph of girth ≥ 2T+4, a deterministic T-round
white algorithm for Π (correct on every admissible input graph) yields a
deterministic (T−1)-round black algorithm for R(Π).  Iterating gives
Theorem B.2's speedup.

This module executes the T = 1 → 0 step of that construction, which is
the one the tests can verify exhaustively:

* a 1-round white algorithm sees its own input edges plus the input-edge
  information of nodes at distance ≤ 1;
* the derived 0-round black algorithm at v computes, for each incident
  edge e = {v,w}, the set L_e of labels w could output on e across every
  admissible input graph G* agreeing with G′ on Z₀(v) (v's own input-edge
  information), then grows the sets to a maximal valid configuration of
  R(Π)'s black constraint.
"""

from __future__ import annotations

from collections.abc import Callable
from itertools import product

import networkx as nx

from repro.core.zero_round import admissible_subgraphs, white_and_black
from repro.formalism.configurations import Configuration, Label
from repro.formalism.labels import set_label
from repro.formalism.problems import Problem
from repro.utils import SimulationError

# A 1-round white algorithm: (node, own input neighbors,
#   {u: input-neighbor-set of u for u within distance 1}) → {neighbor: label}.
OneRoundRule = Callable[[object, frozenset, dict], dict]


def evaluate_one_round(
    graph: nx.Graph, rule: OneRoundRule, input_edges: frozenset
) -> dict[frozenset, Label]:
    """Run a 1-round white algorithm on input graph G′ = ``input_edges``."""
    neighbors_in_input: dict = {node: set() for node in graph.nodes}
    for edge in input_edges:
        u, v = tuple(edge)
        neighbors_in_input[u].add(v)
        neighbors_in_input[v].add(u)
    whites, _ = white_and_black(graph)
    labeling: dict[frozenset, Label] = {}
    for node in whites:
        own = frozenset(neighbors_in_input[node])
        if not own:
            continue
        view = {node: own}
        for neighbor in graph.neighbors(node):
            view[neighbor] = frozenset(neighbors_in_input[neighbor])
        output = rule(node, own, view)
        if set(output) != set(own):
            raise SimulationError(
                f"1-round algorithm at {node!r} labeled wrong edge set"
            )
        for neighbor, label in output.items():
            labeling[frozenset((node, neighbor))] = label
    return labeling


def is_correct_one_round(
    graph: nx.Graph,
    rule: OneRoundRule,
    problem: Problem,
    edge_limit: int = 20,
) -> bool:
    """Exhaustive correctness of a 1-round white algorithm (tiny graphs)."""
    delta_prime = problem.white_arity
    r_prime = problem.black_arity
    whites, _ = white_and_black(graph)
    white_set = set(whites)
    for input_edges in admissible_subgraphs(
        graph, delta_prime, r_prime, edge_limit=edge_limit
    ):
        labeling = evaluate_one_round(graph, rule, input_edges)
        degrees: dict = {}
        incident: dict = {}
        for edge in input_edges:
            for endpoint in edge:
                degrees[endpoint] = degrees.get(endpoint, 0) + 1
                incident.setdefault(endpoint, []).append(labeling[edge])
        for node, degree in degrees.items():
            if node in white_set:
                if degree == delta_prime and not problem.white.allows_multiset(
                    incident[node]
                ):
                    return False
            else:
                if degree == r_prime and not problem.black.allows_multiset(
                    incident[node]
                ):
                    return False
    return True


def derive_zero_round_black_algorithm(
    graph: nx.Graph,
    rule: OneRoundRule,
    problem: Problem,
    input_edges: frozenset,
    edge_limit: int = 20,
) -> dict[frozenset, frozenset[Label]]:
    """The Lemma B.1 construction, T = 1, evaluated on one input graph G′.

    Returns, for every input edge incident to each black node, the L*
    label-set (a label of R(Π)).  The L_e sets are computed by exhaustive
    enumeration of the admissible graphs G* agreeing with G′ at the black
    node's radius-0 view, exactly as in the proof.
    """
    delta_prime = problem.white_arity
    r_prime = problem.black_arity
    _, blacks = white_and_black(graph)

    own_inputs: dict = {node: set() for node in graph.nodes}
    for edge in input_edges:
        u, v = tuple(edge)
        own_inputs[u].add(v)
        own_inputs[v].add(u)

    all_admissible = list(
        admissible_subgraphs(graph, delta_prime, r_prime, edge_limit=edge_limit)
    )

    result: dict[frozenset, frozenset[Label]] = {}
    for black in blacks:
        incident_inputs = [
            frozenset((black, neighbor)) for neighbor in own_inputs[black]
        ]
        if not incident_inputs:
            continue
        # Z_0(black) = black's own input-incidence information.
        agreeing = [
            candidate
            for candidate in all_admissible
            if _agrees_at(candidate, black, own_inputs[black])
        ]
        raw_sets: list[set[Label]] = []
        for edge in incident_inputs:
            observed: set[Label] = set()
            for candidate in agreeing:
                labeling = evaluate_one_round(graph, rule, candidate)
                observed.add(labeling[edge])
            raw_sets.append(observed)
        if len(raw_sets) == r_prime:
            # Full-degree black node: grow to a maximal configuration,
            # exactly the L* of the proof (properties (1)-(3)).
            grown = _grow_to_maximal(raw_sets, problem)
        else:
            # Below full degree the proof's property (2) is vacuous (no
            # size-y multiset lies in the arity-r′ constraint) and the
            # L_e fallback applies; such nodes are unconstrained in R(Π),
            # and white nodes touching them are excluded from the
            # Σ′-membership check (see check_against_R_problem).
            grown = [set(labels) for labels in raw_sets]
        for edge, label_set in zip(incident_inputs, grown):
            result[edge] = frozenset(label_set)
    return result


def _agrees_at(candidate: frozenset, node, required_neighbors: set) -> bool:
    """Does candidate G* give ``node`` exactly these input neighbors?"""
    actual = {
        next(iter(edge - {node}))
        for edge in candidate
        if node in edge
    }
    return actual == required_neighbors


def _grow_to_maximal(
    raw_sets: list[set[Label]], problem: Problem
) -> list[set[Label]]:
    """Grow (L_e) to an L* sequence: supersets, all choices in C_B, maximal.

    Any maximal sequence works (the proof picks an arbitrary one); we grow
    greedily in sorted label order, which is deterministic.
    """
    current = [set(labels) for labels in raw_sets]
    alphabet = sorted(problem.alphabet)
    changed = True
    while changed:
        changed = False
        for index, label_set in enumerate(current):
            for label in alphabet:
                if label in label_set:
                    continue
                trial = [set(s) for s in current]
                trial[index].add(label)
                if _all_choices_allowed(trial, problem):
                    current = trial
                    changed = True
    return current


def _all_choices_allowed(sets: list[set[Label]], problem: Problem) -> bool:
    if len(sets) != problem.black_arity:
        # Partial black nodes (degree < r′) are unconstrained; any sets do.
        return True
    for choice in product(*sets):
        if not problem.black.allows(Configuration(choice)):
            return False
    return True


def check_against_R_problem(
    derived: dict[frozenset, frozenset[Label]],
    graph: nx.Graph,
    r_problem: Problem,
    input_edges: frozenset,
) -> bool:
    """Validate the derived 0-round black output against R(Π).

    Black constraint on black nodes of full input degree: their derived
    configurations are maximal by construction, and membership in R(Π)'s
    black constraint — which kept only *maximal* configurations — is
    exactly what Lemma B.1 asserts.  White constraint on white nodes of
    full input degree *whose incident input edges all belong to
    full-degree black nodes*: only those edges carry Σ′ labels (the
    proof's implicit scope; below-degree black nodes fall back to raw
    L_e sets that need not lie in Σ′ and are unconstrained in R(Π)).
    """
    own_inputs: dict = {node: set() for node in graph.nodes}
    for edge in input_edges:
        u, v = tuple(edge)
        own_inputs[u].add(v)
        own_inputs[v].add(u)
    whites, blacks = white_and_black(graph)
    black_set = set(blacks)
    full_black = {
        node for node in blacks if len(own_inputs[node]) == r_problem.black_arity
    }
    for node in full_black:
        config = Configuration(
            set_label(derived[frozenset((node, nb))]) for nb in own_inputs[node]
        )
        if config not in r_problem.black:
            return False
    for node in whites:
        if len(own_inputs[node]) != r_problem.white_arity:
            continue
        if any(
            neighbor in black_set and neighbor not in full_black
            for neighbor in own_inputs[node]
        ):
            continue
        config = Configuration(
            set_label(derived[frozenset((node, nb))]) for nb in own_inputs[node]
        )
        if config not in r_problem.white:
            return False
    return True
