"""The deterministic lower-bound framework (Theorems 1.1-1.4, 3.4, B.2).

Pipeline (the paper's blueprint, §1.1):

1. take a lower bound sequence Π = Π₀, …, Π_k (reused from LOCAL round
   elimination results — Corollaries 4.6, 5.5, Lemma 6.4);
2. pick a support graph G with certified girth (Lemma 2.1 substitute);
3. decide, exactly, that lift_{Δ,r}(Π′) has no solution on G for some
   relaxation Π′ of Π_k (the CSP solver);
4. conclude: Π needs ≥ min{2k, (g−4)/2} deterministic white-algorithm
   rounds on G in the Supported LOCAL model (Theorem B.2 via Theorem 3.2),
   and the Lemma C.2 lifting turns that into a randomized bound.

The certificate object records every ingredient so the conclusion is
machine-checkable end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.core.bounds import DeterministicRandomizedBound, theorem_b2_bound
from repro.core.derandomization import randomized_rounds_from_deterministic
from repro.core.lift import LiftedProblem
from repro.formalism.problems import Problem
from repro.graphs.girth import exact_girth, hypergraph_girth
from repro.graphs.hypergraphs import Hypergraph
from repro.roundelim.sequences import LowerBoundSequence
from repro.utils import CertificateError

# NOTE: repro.solvers.existence imports repro.core.lift; importing it at
# module scope here would close an import cycle through repro.core's
# package __init__, so the solver entry points are imported lazily inside
# the pipeline functions below.


@dataclass(frozen=True)
class LowerBoundCertificate:
    """A fully mechanical Supported LOCAL lower bound for one instance.

    ``deterministic_rounds`` is the Theorem B.2 value min{2k, (g−4)/2}
    (the hypergraph form uses min{k, (g−4)/2}, Corollary B.3);
    ``randomized_rounds`` applies the Lemma C.2 / Theorem C.3 lifting.
    """

    problem: Problem
    sequence_length: int
    girth: float
    lift_unsolvable: bool
    lifted: LiftedProblem
    bipartite: bool
    n: int
    deterministic_rounds: float
    randomized_rounds: float

    def bound(self) -> DeterministicRandomizedBound:
        return DeterministicRandomizedBound(
            self.deterministic_rounds, self.randomized_rounds
        )


def supported_local_lower_bound(
    support_graph: nx.Graph,
    sequence: LowerBoundSequence,
    endpoint_relaxation: Problem,
    delta: int,
    rank: int,
    verify_sequence: bool = False,
    budget: int = 5_000_000,
) -> LowerBoundCertificate:
    """Run the Theorem 3.4 pipeline on a 2-colored bipartite support graph.

    ``endpoint_relaxation`` is the Π′ of Theorem 3.4 — a relaxation of the
    sequence's last problem whose lift is to be refuted on the graph.
    Raises :class:`CertificateError` when the lift *is* solvable (no lower
    bound follows).  Set ``verify_sequence`` to also re-verify every RE
    step mechanically (slow; the family lemmas are usually verified once
    in the test-suite instead).
    """
    from repro.solvers.existence import lift_solvable_bipartite

    if verify_sequence:
        sequence.verify()
    solvable, _solution, lifted = lift_solvable_bipartite(
        support_graph, endpoint_relaxation, delta, rank, budget=budget
    )
    if solvable:
        raise CertificateError(
            f"lift of {endpoint_relaxation.name} IS solvable on the support "
            f"graph — no lower bound follows (Theorem 3.2)"
        )
    girth = exact_girth(support_graph)
    k = sequence.length
    deterministic = theorem_b2_bound(k, girth)
    return LowerBoundCertificate(
        problem=sequence.first,
        sequence_length=k,
        girth=girth,
        lift_unsolvable=True,
        lifted=lifted,
        bipartite=True,
        n=support_graph.number_of_nodes(),
        deterministic_rounds=deterministic,
        randomized_rounds=randomized_rounds_from_deterministic(
            deterministic, support_graph.number_of_nodes()
        ),
    )


def supported_local_lower_bound_hypergraph(
    support: Hypergraph | nx.Graph,
    sequence: LowerBoundSequence,
    endpoint_relaxation: Problem,
    delta: int,
    rank: int,
    verify_sequence: bool = False,
    budget: int = 5_000_000,
) -> LowerBoundCertificate:
    """The Corollary 3.5 / B.3 pipeline on a (hyper)graph support.

    The non-bipartite speedup halves: min{k, (g−4)/2} (Corollary B.3).
    """
    from repro.solvers.existence import lift_solvable_non_bipartite

    if isinstance(support, nx.Graph):
        support = Hypergraph.from_graph(support)
    if verify_sequence:
        sequence.verify()
    solvable, _solution, lifted = lift_solvable_non_bipartite(
        support, endpoint_relaxation, delta, rank, budget=budget
    )
    if solvable:
        raise CertificateError(
            f"lift of {endpoint_relaxation.name} IS non-bipartitely solvable "
            f"on the support hypergraph — no lower bound follows"
        )
    girth = hypergraph_girth(support.incidence_graph())
    k = sequence.length
    if math.isinf(girth):
        deterministic: float = k
    else:
        deterministic = min(k, (girth - 4) / 2)
    n = len(support.nodes)
    return LowerBoundCertificate(
        problem=sequence.first,
        sequence_length=k,
        girth=girth,
        lift_unsolvable=True,
        lifted=lifted,
        bipartite=False,
        n=n,
        deterministic_rounds=deterministic,
        randomized_rounds=randomized_rounds_from_deterministic(deterministic, n),
    )
