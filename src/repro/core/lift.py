"""The lift operator (paper Definition 3.1) — the central contribution.

For a problem Π with white arity Δ′ and black arity r′, and targets
Δ ≥ Δ′, r ≥ r′, the problem lift_{Δ,r}(Π) is defined over *label-sets*:
non-empty subsets of Σ_Π that are right-closed w.r.t. the black diagram
of Π.  Its constraints:

* black (arity r): {L₁,…,L_r} is allowed iff **every** r′-subset and
  **every** choice from it lies in Π's black constraint;
* white (arity Δ): {L₁,…,L_Δ} is allowed iff **every** Δ′-subset admits
  **some** choice in Π's white constraint.

Theorem 3.2 proves: Π is 0-round solvable by a white algorithm in the
Supported LOCAL model on a (Δ,r)-biregular support graph G iff
lift_{Δ,r}(Π) has a bipartite solution on G.  The constructive directions
of that proof live in :mod:`repro.core.zero_round`.

The lift is represented both *implicitly* (predicates, usable at any
arity) and *explicitly* (a materialized
:class:`~repro.formalism.problems.Problem`, for the CSP solver and for
inspection), with set labels encoded as in
:mod:`repro.formalism.labels`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field
from itertools import combinations, product

import networkx as nx

from repro.formalism.configurations import Configuration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.diagrams import black_diagram, right_closed_subsets, right_closure
from repro.formalism.labels import set_label, set_label_members
from repro.formalism.problems import Problem
from repro.utils import InvalidParameterError
from repro.utils.multiset import all_multisets

LabelSet = frozenset[Label]


def _distinct_subsets(items: tuple, size: int) -> Iterable[tuple]:
    """Deduplicated size-``size`` sub-tuples of a canonical tuple."""
    seen: set[tuple] = set()
    for combo in combinations(items, size):
        if combo not in seen:
            seen.add(combo)
            yield combo


@dataclass(frozen=True)
class LiftedProblem:
    """lift_{Δ,r}(Π), with implicit constraint predicates.

    ``label_sets`` is the alphabet (right-closed non-empty subsets of
    Σ_Π); ``base`` is Π; ``delta`` and ``rank`` are the target arities.
    """

    base: Problem
    delta: int
    rank: int
    label_sets: tuple[LabelSet, ...]
    _diagram: nx.DiGraph = field(repr=False, hash=False, compare=False)

    @property
    def name(self) -> str:
        return f"lift_{{{self.delta},{self.rank}}}({self.base.name})"

    def black_allows(self, sets: Iterable[LabelSet]) -> bool:
        """Definition 3.1's black condition on a size-r multiset.

        Every r′-subset, every choice across it, must be in Π's black
        constraint.
        """
        sets = tuple(sorted(sets, key=lambda s: (len(s), sorted(s))))
        if len(sets) != self.rank:
            return False
        r_prime = self.base.black_arity
        for subset in _distinct_subsets(sets, r_prime):
            for choice in product(*subset):
                if not self.base.black.allows_multiset(choice):
                    return False
        return True

    def white_allows(self, sets: Iterable[LabelSet]) -> bool:
        """Definition 3.1's white condition on a size-Δ multiset.

        Every Δ′-subset must admit some choice in Π's white constraint.
        """
        sets = tuple(sorted(sets, key=lambda s: (len(s), sorted(s))))
        if len(sets) != self.delta:
            return False
        delta_prime = self.base.white_arity
        for subset in _distinct_subsets(sets, delta_prime):
            if not self._exists_white_choice(subset):
                return False
        return True

    def _exists_white_choice(self, subset: tuple[LabelSet, ...]) -> bool:
        ordered = sorted(subset, key=len)

        def recurse(index: int, partial: Counter[Label]) -> bool:
            if index == len(ordered):
                return self.base.white.allows_multiset(partial.elements())
            for label in sorted(ordered[index]):
                partial[label] += 1
                if self.base.white.allows_partial(partial, index + 1) and recurse(
                    index + 1, partial
                ):
                    partial[label] -= 1
                    return True
                partial[label] -= 1
                if partial[label] == 0:
                    del partial[label]
            return False

        return recurse(0, Counter())

    def right_close(self, labels: Iterable[Label]) -> LabelSet:
        """The smallest valid lift label containing ``labels``.

        Used by the Theorem 3.2 construction, which collects raw output
        sets and then closes them w.r.t. the black diagram of Π.
        """
        return right_closure(self._diagram, labels)

    def to_problem(self) -> Problem:
        """Materialize an explicit Problem (set labels as strings).

        Feasible whenever the number of size-Δ (size-r) multisets over the
        lift alphabet is modest; the paper's verification-scale instances
        always are.
        """
        encoded = {set_label(s): s for s in self.label_sets}
        white_configs = []
        for names in all_multisets(encoded, self.delta):
            if self.white_allows(encoded[name] for name in names):
                white_configs.append(Configuration(names))
        black_configs = []
        for names in all_multisets(encoded, self.rank):
            if self.black_allows(encoded[name] for name in names):
                black_configs.append(Configuration(names))
        return Problem(
            alphabet=frozenset(encoded),
            white=Constraint(white_configs),
            black=Constraint(black_configs),
            name=self.name,
        )

    def solvable_on(
        self,
        graph: nx.Graph,
        *,
        backend: str | None = None,
        budget: int | None = None,
    ) -> bool:
        """Does this lift have a bipartite solution on the support graph?

        The Theorem 3.2 gate, through any registered solver backend.
        """
        from repro.solvers.csp import DEFAULT_NODE_BUDGET
        from repro.solvers.existence import solve_bipartite

        solution = solve_bipartite(
            graph,
            self.to_problem(),
            budget=DEFAULT_NODE_BUDGET if budget is None else budget,
            backend=backend,
        )
        return solution is not None


def lift(problem: Problem, delta: int, rank: int) -> LiftedProblem:
    """Construct lift_{Δ,r}(Π) per Definition 3.1.

    Requires Δ ≥ Δ′ and r ≥ r′ (the support graph is denser than the
    input graph class).
    """
    if delta < problem.white_arity:
        raise InvalidParameterError(
            f"lift needs Δ ≥ Δ' = {problem.white_arity}, got {delta}"
        )
    if rank < problem.black_arity:
        raise InvalidParameterError(
            f"lift needs r ≥ r' = {problem.black_arity}, got {rank}"
        )
    diagram = black_diagram(problem)
    label_sets = tuple(right_closed_subsets(diagram))
    return LiftedProblem(
        base=problem,
        delta=delta,
        rank=rank,
        label_sets=label_sets,
        _diagram=diagram,
    )


def decode_lift_solution(
    labeling: dict, lifted: LiftedProblem
) -> dict:
    """Decode a string-labeled lift solution back to label-set values."""
    return {key: set_label_members(value) for key, value in labeling.items()}
