"""Closed-form evaluators for every bound the paper states.

The theorems' finite forms are exact (not asymptotic): Theorem B.2 gives
min{2k, (g−4)/2}; Theorem 3.4 gives min{2k, (ε(log_{Δr}(n) − c) − 4)/2} − 1
deterministic and the log log variant randomized.  These evaluators are the
"paper" column of every experiment table; measured/verified values sit next
to them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils import InvalidParameterError


def log_base(value: float, base: float) -> float:
    """log_base(value), guarded."""
    if value <= 0 or base <= 1:
        raise InvalidParameterError(f"log_{base}({value}) is undefined here")
    return math.log(value) / math.log(base)


@dataclass(frozen=True)
class DeterministicRandomizedBound:
    """A pair of round lower bounds (deterministic, randomized)."""

    deterministic: float
    randomized: float

    def rounded(self) -> tuple[int, int]:
        """Max(0, floor(·)) of both — the usable round counts."""
        return (
            max(0, math.floor(self.deterministic)),
            max(0, math.floor(self.randomized)),
        )


def theorem_b2_bound(k: int, girth: float) -> float:
    """Theorem B.2: min{2k, (g−4)/2} rounds for a white algorithm."""
    if math.isinf(girth):
        return 2 * k
    return min(2 * k, (girth - 4) / 2)


def theorem_34_bound(
    k: int, delta: int, rank: int, n: int, epsilon: float, c: float
) -> DeterministicRandomizedBound:
    """Theorem 3.4's exact finite forms (bipartite case).

    Deterministic: min{2k, (ε(log_{Δr}(n) − c) − 4)/2} − 1.
    Randomized:    same with n replaced by sqrt(log(n)/3).
    """
    base = delta * rank
    det_inner = (epsilon * (log_base(n, base) - c) - 4) / 2
    deterministic = min(2 * k, det_inner) - 1
    rand_n = math.sqrt(math.log2(max(n, 2)) / 3)
    rand_inner = (epsilon * (log_base(max(rand_n, 1.0 + 1e-9), base) - c) - 4) / 2
    randomized = min(2 * k, rand_inner) - 1
    return DeterministicRandomizedBound(deterministic, randomized)


def corollary_35_bound(
    k: int, delta: int, rank: int, n: int, epsilon: float, c: float
) -> DeterministicRandomizedBound:
    """Corollary 3.5's hypergraph forms: min{k, …} with cube-root inside."""
    base = delta * rank
    det_inner = (epsilon * (log_base(n, base) - c) - 4) / 2
    deterministic = min(k, det_inner) - 1
    rand_n = (math.log2(max(n, 2)) / 4) ** (1 / 3)
    rand_inner = (epsilon * (log_base(max(rand_n, 1.0 + 1e-9), base) - c) - 4) / 2
    randomized = min(k, rand_inner) - 1
    return DeterministicRandomizedBound(deterministic, randomized)


def matching_sequence_length(delta_prime: int, x: int, y: int) -> int:
    """§4.2's k := ⌊(Δ′ − x)/y⌋ − 2 — the usable sequence length."""
    if y < 1:
        raise InvalidParameterError(f"y must be ≥ 1, got {y}")
    return max(0, (delta_prime - x) // y - 2)


def theorem_41_bound(
    delta: int, delta_prime: int, x: int, y: int, n: int, epsilon: float = 0.1
) -> DeterministicRandomizedBound:
    """Theorem 4.1 / 1.5: Ω(min{(Δ′−x)/y, log_Δ n}) det,
    log_Δ log n randomized — evaluated in its concrete §4.2 form
    min{k, ε·log_Δ n} − 1 (minus 2 more to reach the matching problem
    itself via Lemma 4.4)."""
    k = matching_sequence_length(delta_prime, x, y)
    deterministic = min(k, epsilon * log_base(n, delta)) - 1 - 2
    randomized = (
        min(k, epsilon * log_base(max(math.log2(max(n, 2)), 2), delta)) - 1 - 2
    )
    return DeterministicRandomizedBound(deterministic, randomized)


def theorem_51_applicable(
    delta: int, delta_prime: int, alpha: int, colors: int, epsilon: float = 0.25
) -> bool:
    """Theorem 5.1's hypothesis: (α+1)c ≤ min{Δ′, εΔ/log Δ}."""
    cap = min(delta_prime, epsilon * delta / math.log(delta))
    return (alpha + 1) * colors <= cap


def theorem_51_bound(delta: int, n: int) -> DeterministicRandomizedBound:
    """Theorem 5.1 / 1.6: Ω(log_Δ n) det, Ω(log_Δ log n) rand."""
    return DeterministicRandomizedBound(
        deterministic=log_base(n, delta),
        randomized=log_base(max(math.log2(max(n, 2)), 2), delta),
    )


def theorem_61_bound(
    delta: int,
    delta_prime: int,
    alpha: int,
    colors: int,
    beta: int,
    n: int,
    epsilon: float = 0.25,
) -> DeterministicRandomizedBound:
    """Theorem 6.1 / 1.7: Ω(min{β(Δ̄/((α+1)c))^{1/β}, log_Δ n}).

    Δ̄ = min{Δ′, εΔ/log Δ} (Theorem 1.7's form; Theorem 6.1 additionally
    divides by 2^{cβ}, which matters only for constants).
    """
    if beta < 1:
        raise InvalidParameterError("Theorem 6.1 needs β ≥ 1")
    delta_bar = min(delta_prime, epsilon * delta / math.log(delta))
    quality = (alpha + 1) * colors
    if quality <= 0 or delta_bar < quality:
        raise InvalidParameterError(
            f"need (α+1)c ≤ Δ̄; got (α+1)c={quality}, Δ̄={delta_bar:.2f}"
        )
    core = beta * (delta_bar / quality) ** (1 / beta)
    return DeterministicRandomizedBound(
        deterministic=min(core, log_base(n, delta)),
        randomized=min(core, log_base(max(math.log2(max(n, 2)), 2), delta)),
    )


def lemma_64_sequence_length(
    delta: int, alpha: int, colors: int, k: int, beta: int, epsilon: float = 0.25
) -> int:
    """Lemma 6.4's t := ⌊εβ(k/((α+1)c))^{1/β}⌋."""
    if not 1 <= k < delta:
        raise InvalidParameterError(f"Lemma 6.4 needs 1 ≤ k < Δ, got k={k}")
    quality = (alpha + 1) * colors
    return math.floor(epsilon * beta * (k / quality) ** (1 / beta))


def aapr23_mis_parameters(n: int) -> tuple[int, int, float]:
    """§1.1's instantiation answering [AAPR23]: Δ′ = log n / log log n,
    Δ = Δ′ log Δ′; returns (Δ, Δ′, bound Ω(log n / log log n))."""
    if n < 16:
        raise InvalidParameterError("n too small for the AAPR23 instantiation")
    log_n = math.log2(n)
    delta_prime = max(2, round(log_n / math.log2(max(log_n, 2))))
    delta = max(delta_prime + 1, round(delta_prime * math.log2(delta_prime + 1)))
    bound = log_n / math.log2(max(log_n, 2))
    return delta, delta_prime, bound
