"""The replayable counterexample corpus (``tests/corpus/``).

Every entry is one canonical-JSON file describing a single oracle case:

.. code-block:: json

    {
      "schema": "repro.verification/corpus-v1",
      "oracle": "solver",
      "params": { "...": "oracle-specific case description" },
      "detail": "what disagreed when the case was captured",
      "seed": 0,
      "case_id": "0123456789abcdef"
    }

``params`` is exactly what the oracle's ``check`` accepts, so replay needs
no randomness and no environment: rebuild, re-check.  A committed entry is
a *regression guard* — it must replay green (the discrepancy it recorded
is fixed, and must stay fixed); the fuzzer writes newly-found failures
into the corpus directory so CI can surface them as artifacts.
"""

from __future__ import annotations

from pathlib import Path

from repro.utils import InvalidParameterError
from repro.utils.serialization import result_digest, write_json
from repro.verification.oracles import resolve_oracle, run_check

CORPUS_SCHEMA = "repro.verification/corpus-v1"

#: Repository-relative default corpus location.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"

_REQUIRED_KEYS = ("schema", "oracle", "params", "detail", "seed", "case_id")


def case_id(oracle_name: str, params: dict) -> str:
    """The stable identity of a case: a digest of (oracle, params)."""
    return result_digest({"oracle": oracle_name, "params": params})


def make_entry(oracle_name: str, params: dict, detail: str, seed: int) -> dict:
    """Build a corpus entry dict for one (possibly minimized) case."""
    return {
        "schema": CORPUS_SCHEMA,
        "oracle": oracle_name,
        "params": params,
        "detail": detail,
        "seed": seed,
        "case_id": case_id(oracle_name, params),
    }


def validate_entry(entry: dict) -> None:
    """Raise :class:`InvalidParameterError` on a malformed entry."""
    missing = [key for key in _REQUIRED_KEYS if key not in entry]
    if missing:
        raise InvalidParameterError(f"corpus entry lacks keys {missing}")
    if entry["schema"] != CORPUS_SCHEMA:
        raise InvalidParameterError(
            f"corpus entry has schema {entry['schema']!r}; expected "
            f"{CORPUS_SCHEMA!r}"
        )
    resolve_oracle(entry["oracle"])
    expected = case_id(entry["oracle"], entry["params"])
    if entry["case_id"] != expected:
        raise InvalidParameterError(
            f"corpus entry case_id {entry['case_id']!r} does not match its "
            f"params (expected {expected!r})"
        )


def entry_filename(entry: dict) -> str:
    return f"{entry['oracle']}-{entry['case_id']}.json"


def save_entry(entry: dict, directory: str | Path) -> Path:
    """Write an entry into the corpus directory (canonical JSON)."""
    validate_entry(entry)
    return write_json(Path(directory) / entry_filename(entry), entry)


def corpus_files(directory: str | Path) -> list[Path]:
    """Corpus entry files, sorted by name for deterministic replay order."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(path for path in root.glob("*.json") if path.is_file())


def load_entry(path: str | Path) -> dict:
    """Read and validate one corpus entry."""
    import json

    entry = json.loads(Path(path).read_text())
    validate_entry(entry)
    return entry


def replay_entry(entry: dict) -> str | None:
    """Re-check a corpus entry; the discrepancy description, or None."""
    validate_entry(entry)
    return run_check(resolve_oracle(entry["oracle"]), entry["params"])
