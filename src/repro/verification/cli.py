"""``python -m repro.verification`` — list, fuzz and replay.

Commands:

* ``list`` — the registered differential oracles;
* ``fuzz --cases N [--seed K] [--jobs J] [--oracle NAME ...]
  [--corpus DIR] [--out FILE] [--shrink-budget B]`` — generate N cases
  (round-robin across the selected oracles), check each one, greedily
  minimize any failure and (with ``--corpus``) serialize it for replay;
* ``replay [--corpus DIR] [--out FILE]`` — re-check every corpus entry.

Determinism mirrors the experiments runner: each case derives a private
RNG from ``(seed, oracle, case index)`` — never from execution order or
worker assignment — results are emitted in case order, and serialization
is canonical, so ``--jobs 4`` and ``--jobs 1`` produce byte-identical
JSON.  Both ``fuzz`` and ``replay`` exit non-zero when a discrepancy
survives, so CI can gate on the commands directly.
"""

from __future__ import annotations

import argparse
import multiprocessing
import random
import sys

from repro.utils.serialization import canonical_dumps, result_digest, write_json
from repro.utils.tables import format_table
from repro.verification.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_files,
    load_entry,
    make_entry,
    replay_entry,
    save_entry,
)
from repro.verification.oracles import ORACLES, available_oracles, resolve_oracle, run_check
from repro.verification.shrink import DEFAULT_SHRINK_BUDGET, shrink_failing_case

FUZZ_SCHEMA = "repro.verification/fuzz-v1"
REPLAY_SCHEMA = "repro.verification/replay-v1"


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (name, ORACLES[name].description) for name in available_oracles()
    ]
    print(format_table(["oracle", "cross-checked implementations"], rows))
    return 0


def generate_cases(oracle_names: list[str], cases: int, seed: int) -> list[dict]:
    """The deterministic case list of one fuzz run.

    Case ``i`` belongs to oracle ``i % len(oracles)`` and draws its
    parameters from a private RNG keyed by (seed, oracle, i) only.
    """
    tasks = []
    for index in range(cases):
        name = oracle_names[index % len(oracle_names)]
        rng = random.Random(f"{seed}:{name}:{index}")
        tasks.append(
            {
                "index": index,
                "oracle": name,
                "params": resolve_oracle(name).generate(rng),
            }
        )
    return tasks


def _check_task(task: dict) -> dict:
    detail = run_check(resolve_oracle(task["oracle"]), task["params"])
    return {**task, "detail": detail}


def run_fuzz(
    oracle_names: list[str],
    cases: int,
    seed: int,
    jobs: int = 1,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
) -> tuple[dict, list[dict]]:
    """Execute one fuzz run; return (payload, minimized corpus entries).

    The payload is independent of ``jobs`` (the parallel-determinism
    contract); minimization runs serially in the parent so shrink order
    is deterministic too.
    """
    tasks = generate_cases(oracle_names, cases, seed)
    if jobs == 1 or len(tasks) <= 1:
        checked = [_check_task(task) for task in tasks]
    else:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            checked = pool.map(_check_task, tasks)
    entries = []
    for result in checked:
        if result["detail"] is None:
            continue
        oracle = resolve_oracle(result["oracle"])
        minimized = shrink_failing_case(
            oracle, result["params"], result["detail"], budget=shrink_budget
        )
        entries.append(
            make_entry(oracle.name, minimized.params, minimized.detail, seed)
        )
    per_oracle = {
        name: {
            "cases": sum(1 for r in checked if r["oracle"] == name),
            "discrepancies": sum(
                1
                for r in checked
                if r["oracle"] == name and r["detail"] is not None
            ),
        }
        for name in oracle_names
    }
    payload = {
        "schema": FUZZ_SCHEMA,
        "seed": seed,
        "cases": cases,
        "oracles": per_oracle,
        "discrepancies": [
            {
                "index": result["index"],
                "oracle": result["oracle"],
                "detail": result["detail"],
            }
            for result in checked
            if result["detail"] is not None
        ],
        "counterexamples": entries,
        "ok": all(result["detail"] is None for result in checked),
    }
    payload["digest"] = result_digest(payload)
    return payload, entries


def _emit(payload: dict, out: str | None) -> None:
    if out:
        write_json(out, payload)
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(canonical_dumps(payload, indent=2))


def _cmd_fuzz(args: argparse.Namespace) -> int:
    names = sorted(set(args.oracle)) if args.oracle else available_oracles()
    for name in names:
        resolve_oracle(name)  # fail fast with the oracle listing
    payload, entries = run_fuzz(
        names,
        cases=args.cases,
        seed=args.seed,
        jobs=args.jobs,
        shrink_budget=args.shrink_budget,
    )
    saved = []
    if args.corpus:
        saved = [str(save_entry(entry, args.corpus)) for entry in entries]
    _emit(payload, args.out)
    rows = [
        (
            name,
            stats["cases"],
            stats["discrepancies"],
            "ok" if stats["discrepancies"] == 0 else "FAIL",
        )
        for name, stats in sorted(payload["oracles"].items())
    ]
    print(
        format_table(
            ["oracle", "cases", "discrepancies", "status"],
            rows,
            title=f"fuzz (seed {args.seed}, {args.cases} cases)",
        ),
        file=sys.stderr,
    )
    for path in saved:
        print(f"minimized counterexample: {path}", file=sys.stderr)
    return 0 if payload["ok"] else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    files = corpus_files(args.corpus)
    if not files:
        # An unreadable/empty corpus must not pass as "all entries green"
        # — a path typo would silently disarm the CI regression gate.
        print(
            f"error: no corpus entries found under {args.corpus!r}",
            file=sys.stderr,
        )
        return 1
    results = []
    for path in files:
        entry = load_entry(path)
        detail = replay_entry(entry)
        results.append(
            {
                "file": path.name,
                "oracle": entry["oracle"],
                "case_id": entry["case_id"],
                "detail": detail,
                "ok": detail is None,
            }
        )
    payload = {
        "schema": REPLAY_SCHEMA,
        "corpus": str(args.corpus),
        "entries": results,
        "ok": all(result["ok"] for result in results),
    }
    payload["digest"] = result_digest(payload)
    _emit(payload, args.out)
    rows = [
        (result["file"], result["oracle"], "ok" if result["ok"] else "FAIL")
        for result in results
    ]
    print(
        format_table(
            ["entry", "oracle", "status"],
            rows,
            title=f"corpus replay ({len(results)} entries)",
        ),
        file=sys.stderr,
    )
    return 0 if payload["ok"] else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verification",
        description="Differential verification: adversarial instance "
        "fuzzing across every engine/oracle pair.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list differential oracles").set_defaults(
        handler=_cmd_list
    )

    fuzz = commands.add_parser("fuzz", help="fuzz the oracle registry")
    fuzz.add_argument("--cases", type=_positive_int, default=100,
                      help="number of cases (default: 100)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed for case RNGs (default: 0)")
    fuzz.add_argument("--jobs", type=_positive_int, default=1,
                      help="worker processes (default: 1, serial); the "
                      "JSON payload is byte-identical for any value")
    fuzz.add_argument("--oracle", action="append", default=None,
                      choices=available_oracles(),
                      help="restrict to this oracle (repeatable; default: all)")
    fuzz.add_argument("--corpus", default=None,
                      help="directory to serialize minimized counterexamples "
                      "into (default: do not write)")
    fuzz.add_argument("--shrink-budget", type=_positive_int,
                      default=DEFAULT_SHRINK_BUDGET,
                      help="candidate evaluations per minimization "
                      f"(default: {DEFAULT_SHRINK_BUDGET})")
    fuzz.add_argument("--out", default=None,
                      help="write canonical JSON here instead of stdout")
    fuzz.set_defaults(handler=_cmd_fuzz)

    replay = commands.add_parser("replay", help="re-check every corpus entry")
    replay.add_argument("--corpus", default=str(DEFAULT_CORPUS_DIR),
                        help=f"corpus directory (default: {DEFAULT_CORPUS_DIR})")
    replay.add_argument("--out", default=None,
                        help="write canonical JSON here instead of stdout")
    replay.set_defaults(handler=_cmd_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)
