"""The differential-oracle registry.

An *oracle* names a pair (or family) of independently-implemented answers
to the same question and turns their agreement into a checkable property:

======================  ====================================================
oracle                  cross-checked implementations
======================  ====================================================
``roundelim``           kernel vs reference ``apply_R`` / ``apply_R_bar`` /
                        ``round_elimination`` (:mod:`repro.roundelim`)
``engines``             object vs batched vs vectorized execution of every
                        registered algorithm through
                        :func:`repro.api.solve` (every algorithm now
                        dispatches to a numpy kernel)
``solver``              CSP existence vs brute-force enumeration, with the
                        returned solution validated by two checkers
``serialization``       canonical-JSON encode → decode → encode stability
                        and digest agreement (:mod:`repro.utils.serialization`)
``views``               Supported LOCAL view collection vs an independent
                        BFS reimplementation (:mod:`repro.local.views`)
``explore``             store-memoized canonical RE expansion
                        (:mod:`repro.roundelim.explore`) vs direct kernel
                        and reference operator calls, including digest
                        invariance under renaming and budget-exhaustion
                        parity
``sat``                 SAT backend vs CSP backend: existence agreement and
                        exact solution-set equality on bipartite,
                        S-solution, hypergraph-incidence and lifted
                        instances, with UNSAT answers RUP-certified
``reliability``         faulted service/exploration runs (explicit fault
                        plans through :mod:`repro.reliability.chaos`) vs
                        fault-free baselines: record-byte parity,
                        exactly-once re-dispatch, bounded recovery
                        recompute
======================  ====================================================

Each oracle generates its own random cases (JSON-able dicts, see
:mod:`repro.verification.generators`), checks one case — returning a
discrepancy description or ``None`` — and proposes structurally smaller
candidate cases for the shrinking minimizer.
"""

from __future__ import annotations

import json
import random
from collections import deque
from collections.abc import Iterator

from repro import api
from repro.checkers import check_bipartite_solution
from repro.local.supported import SupportedInstance, run_supported_view_algorithm
from repro.roundelim import operators
from repro.solvers.backends import make_solver
from repro.solvers.csp import check_edge_labeling
from repro.solvers.enumeration import brute_force_solvable, solution_set
from repro.solvers.existence import solve_bipartite
from repro.utils import InvalidParameterError, LocalityViolationError, SolverLimitError
from repro.utils.serialization import canonical_dumps, result_digest, to_jsonable
from repro.verification.generators import (
    MAX_SOLVER_EDGES,
    build_colored_graph,
    build_fault_plan,
    build_problem,
    build_sat_case,
    build_support_graph,
    build_value,
    random_colored_graph_params,
    random_engine_case_params,
    random_fault_plan_params,
    random_problem_params,
    random_sat_case_params,
    random_supported_instance_params,
    random_value_tree,
)

#: Popped-configuration budget for fuzzed round elimination steps.  Small
#: enough that a pathological random problem cannot stall the fuzzer;
#: budget exhaustion itself must agree across engines.
ROUNDELIM_BUDGET = 20_000


class Oracle:
    """One differential property: generate, check, shrink."""

    name: str = ""
    description: str = ""

    def generate(self, rng: random.Random) -> dict:
        raise NotImplementedError

    def check(self, params: dict) -> str | None:
        """Run both implementations; describe a disagreement or return None."""
        raise NotImplementedError

    def shrink(self, params: dict) -> Iterator[dict]:
        """Structurally smaller candidate cases (all must be buildable)."""
        return iter(())


# ---------------------------------------------------------------------------
# roundelim: kernel vs reference operators


_ROUNDELIM_OPS = {
    "R": operators.apply_R,
    "R_bar": operators.apply_R_bar,
    "RE": operators.round_elimination,
}


def _problem_difference(kernel, reference) -> str | None:
    if kernel.name != reference.name:
        return f"names differ: {kernel.name!r} vs {reference.name!r}"
    if kernel.alphabet != reference.alphabet:
        return (
            f"alphabets differ: {sorted(kernel.alphabet)} vs "
            f"{sorted(reference.alphabet)}"
        )
    for side in ("white", "black"):
        ours, theirs = getattr(kernel, side), getattr(reference, side)
        if ours != theirs:
            only_kernel = sorted(str(c) for c in ours if c not in theirs)
            only_reference = sorted(str(c) for c in theirs if c not in ours)
            return (
                f"{side} constraints differ: kernel-only={only_kernel}, "
                f"reference-only={only_reference}"
            )
    return None


class RoundElimOracle(Oracle):
    name = "roundelim"
    description = "kernel vs reference apply_R / apply_R_bar / round_elimination"

    def generate(self, rng: random.Random) -> dict:
        params = random_problem_params(rng)
        params["op"] = rng.choice(tuple(sorted(_ROUNDELIM_OPS)))
        return params

    def check(self, params: dict) -> str | None:
        problem = build_problem(params)
        op = _ROUNDELIM_OPS[params["op"]]
        results: dict[str, object] = {}
        limited: dict[str, bool] = {}
        for engine in operators.ENGINES:
            try:
                results[engine] = op(
                    problem, budget=ROUNDELIM_BUDGET, engine=engine
                )
                limited[engine] = False
            except SolverLimitError:
                limited[engine] = True
        if limited["kernel"] != limited["reference"]:
            exhausted = "kernel" if limited["kernel"] else "reference"
            return (
                f"only the {exhausted} engine exhausted the budget "
                f"{ROUNDELIM_BUDGET} on {params['op']}"
            )
        if limited["kernel"]:
            return None  # both exhausted: consistent
        return _problem_difference(results["kernel"], results["reference"])

    def shrink(self, params: dict) -> Iterator[dict]:
        # A cheaper operator first: R̄ is R on the swapped problem and RE
        # composes both, so a bug usually survives the downgrade.
        for op in ("R_bar", "R"):
            if params["op"] not in (op, "R"):
                yield {**params, "op": op}
        for side in ("white", "black"):
            if len(params[side]) > 1:
                for index in range(len(params[side])):
                    configs = [
                        config
                        for position, config in enumerate(params[side])
                        if position != index
                    ]
                    yield {**params, side: configs}
        used = {
            label
            for side in ("white", "black")
            for config in params[side]
            for label in config
        }
        for label in params["alphabet"]:
            if label not in used and len(params["alphabet"]) > 1:
                yield {
                    **params,
                    "alphabet": [a for a in params["alphabet"] if a != label],
                }


# ---------------------------------------------------------------------------
# engines: every registered engine vs the object reference


class EngineParityOracle(Oracle):
    """Byte parity of every registered engine against ``object``.

    Every registered algorithm names a numpy kernel, so each matrix row
    differentially tests a kernel against the per-node engines (a spec
    naming an unregistered kernel raises rather than falling back).
    Where numpy is importable the ``vectorized`` engine must actually be
    registered — a silent registration regression would otherwise shrink
    the matrix back to two engines without failing anything.
    """

    name = "engines"
    description = (
        "object vs batched vs vectorized engine runs through repro.api.solve"
    )

    def generate(self, rng: random.Random) -> dict:
        return random_engine_case_params(rng)

    def check(self, params: dict) -> str | None:
        engines = api.available_engines()
        try:
            import numpy  # noqa: F401
        except ModuleNotFoundError:
            pass
        else:
            if "vectorized" not in engines:
                return (
                    "numpy is importable but the 'vectorized' engine is "
                    "not registered"
                )
        reports = {
            engine: api.solve(
                params["spec"],
                algorithm=params["algorithm"],
                engine=engine,
                n=params["n"],
                seed=params["seed"],
            )
            for engine in engines
        }
        reference = reports.pop("object")
        if reference.valid is not True:
            reason = "" if reference.check is None else reference.check.reason
            return (
                f"object-engine solution failed its checker: {reason or 'invalid'}"
            )
        expected = reference.canonical_json()
        for engine, report in sorted(reports.items()):
            if report.canonical_json() != expected:
                return (
                    f"engine {engine!r} report diverges from 'object' on "
                    f"{params['spec']} / {params['algorithm']}"
                )
        return None

    def shrink(self, params: dict) -> Iterator[dict]:
        if params["n"] > 8:
            yield {**params, "n": max(8, params["n"] // 2)}
        if params["seed"] != 0:
            yield {**params, "seed": 0}


# ---------------------------------------------------------------------------
# solver: CSP existence vs brute-force enumeration vs checkers


class SolverOracle(Oracle):
    name = "solver"
    description = "CSP existence vs brute-force enumeration, checker-validated"

    def generate(self, rng: random.Random) -> dict:
        return {
            "graph": random_colored_graph_params(rng),
            "problem": random_problem_params(rng),
        }

    def check(self, params: dict) -> str | None:
        graph = build_colored_graph(params["graph"])
        problem = build_problem(params["problem"])
        solution = solve_bipartite(graph, problem)
        brute = brute_force_solvable(graph, problem, edge_limit=MAX_SOLVER_EDGES)
        if (solution is not None) != brute:
            return (
                f"existence disagrees: CSP={'sat' if solution is not None else 'unsat'}"
                f" but brute force={'sat' if brute else 'unsat'}"
            )
        if solution is not None:
            verdict = check_bipartite_solution(graph, problem, solution)
            if not verdict:
                return (
                    f"CSP solution rejected by check_bipartite_solution: "
                    f"{verdict.reason}"
                )
            if not check_edge_labeling(graph, problem, solution):
                return "CSP solution rejected by check_edge_labeling"
        return None

    def shrink(self, params: dict) -> Iterator[dict]:
        graph = params["graph"]
        for index in range(len(graph["edges"])):
            edges = [
                edge
                for position, edge in enumerate(graph["edges"])
                if position != index
            ]
            yield {**params, "graph": {**graph, "edges": edges}}
        touched = {node for edge in graph["edges"] for node in edge}
        isolated = [
            [name, color] for name, color in graph["nodes"] if name not in touched
        ]
        if isolated and len(graph["nodes"]) > 1:
            name, _color = isolated[0]
            nodes = [entry for entry in graph["nodes"] if entry[0] != name]
            yield {**params, "graph": {**graph, "nodes": nodes}}
        problem = params["problem"]
        for side in ("white", "black"):
            if len(problem[side]) > 1:
                for index in range(len(problem[side])):
                    configs = [
                        config
                        for position, config in enumerate(problem[side])
                        if position != index
                    ]
                    yield {**params, "problem": {**problem, side: configs}}


# ---------------------------------------------------------------------------
# sat: SAT backend vs CSP backend (existence + exact solution sets)


class SatOracle(Oracle):
    name = "sat"
    description = (
        "SAT vs CSP solver backends: existence, solution sets, UNSAT proofs"
    )

    def generate(self, rng: random.Random) -> dict:
        return random_sat_case_params(rng)

    def check(self, params: dict) -> str | None:
        graph, problem, white_active, black_active = build_sat_case(params)
        sets = {
            backend: solution_set(
                graph,
                problem,
                backend=backend,
                white_active=white_active,
                black_active=black_active,
            )
            for backend in ("csp", "sat")
        }
        if sets["csp"] != sets["sat"]:
            only_csp = len(set(sets["csp"]) - set(sets["sat"]))
            only_sat = len(set(sets["sat"]) - set(sets["csp"]))
            return (
                f"solution sets differ on kind {params['kind']!r}: "
                f"csp={len(sets['csp'])} sat={len(sets['sat'])} "
                f"(csp-only={only_csp}, sat-only={only_sat})"
            )
        solver = make_solver(
            graph,
            problem,
            backend="sat",
            white_active=white_active,
            black_active=black_active,
        )
        solution = solver.solve()
        if (solution is not None) != bool(sets["csp"]):
            verdict = "sat" if solution is not None else "unsat"
            return (
                f"SAT existence ({verdict}) disagrees with the enumerated "
                f"solution count {len(sets['csp'])}"
            )
        if solution is None:
            if not solver.certify_unsat():
                return "UNSAT answer failed its RUP proof check"
        elif white_active is None and black_active is None:
            verdict = check_bipartite_solution(graph, problem, solution)
            if not verdict:
                return (
                    f"SAT solution rejected by check_bipartite_solution: "
                    f"{verdict.reason}"
                )
            if not check_edge_labeling(graph, problem, solution):
                return "SAT solution rejected by check_edge_labeling"
        return None

    def shrink(self, params: dict) -> Iterator[dict]:
        problem = params["problem"]
        for side in ("white", "black"):
            if len(problem[side]) > 1:
                for index in range(len(problem[side])):
                    configs = [
                        config
                        for position, config in enumerate(problem[side])
                        if position != index
                    ]
                    yield {**params, "problem": {**problem, side: configs}}
        graph = params.get("graph")
        if graph:
            for index in range(len(graph["edges"])):
                edges = [
                    edge
                    for position, edge in enumerate(graph["edges"])
                    if position != index
                ]
                yield {**params, "graph": {**graph, "edges": edges}}


# ---------------------------------------------------------------------------
# serialization: canonical JSON round-trip stability


class SerializationOracle(Oracle):
    name = "serialization"
    description = "canonical JSON encode → decode → encode byte stability"

    def generate(self, rng: random.Random) -> dict:
        return {"tree": random_value_tree(rng)}

    def check(self, params: dict) -> str | None:
        value = build_value(params["tree"])
        encoded = canonical_dumps(value)
        decoded = json.loads(encoded)
        re_encoded = canonical_dumps(decoded)
        if re_encoded != encoded:
            return (
                f"round trip unstable: first pass {encoded!r}, "
                f"second pass {re_encoded!r}"
            )
        if result_digest(decoded) != result_digest(value):
            return "digest changes across an encode/decode round trip"
        flattened = to_jsonable(value)
        if to_jsonable(flattened) != flattened:
            return "to_jsonable is not idempotent on its own output"
        # The wire format built on these primitives: a SolveReport
        # carrying the fuzzed tree as its outputs must survive
        # encode → from_record → encode byte-identically (the
        # repro.api/report-v1 contract the solve service caches rely on).
        report = api.SolveReport(
            problem="fuzz:serialization",
            family="fuzz",
            algorithm="fuzz:tree",
            engine="object",
            seed=0,
            n=1,
            rounds=0,
            outputs=value,
            check=None,
            messages_delivered=0,
            messages_dropped=0,
            peak_live_nodes=1,
        )
        first = report.canonical_json()
        try:
            rebuilt = api.SolveReport.from_record(json.loads(first))
        except Exception as error:  # noqa: BLE001 - any crash is a finding
            return (
                f"SolveReport.from_record rejected its own canonical "
                f"record: {type(error).__name__}: {error}"
            )
        if rebuilt.canonical_json() != first:
            return (
                "SolveReport encode → from_record → encode is not "
                "byte-stable on the fuzzed outputs tree"
            )
        return None

    def shrink(self, params: dict) -> Iterator[dict]:
        tree = params["tree"]
        children = tree.get("items", []) + [
            node for entry in tree.get("entries", []) for node in entry
        ]
        for child in children:
            yield {"tree": child}
        if "items" in tree and tree["items"]:
            for index in range(len(tree["items"])):
                items = [
                    item
                    for position, item in enumerate(tree["items"])
                    if position != index
                ]
                yield {"tree": {**tree, "items": items}}
        if "entries" in tree and tree["entries"]:
            for index in range(len(tree["entries"])):
                entries = [
                    entry
                    for position, entry in enumerate(tree["entries"])
                    if position != index
                ]
                yield {"tree": {**tree, "entries": entries}}


# ---------------------------------------------------------------------------
# views: Supported LOCAL view collection vs an independent BFS


def _reference_ball(adjacency: dict, source, radius: int) -> set:
    """Nodes within ``radius`` of ``source`` — an independent BFS, written
    against a plain adjacency dict so it shares no code with
    :func:`repro.local.views.collect_supported_view`."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if distances[node] == radius:
            continue
        for neighbor in adjacency[node]:
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return set(distances)


class ViewsOracle(Oracle):
    name = "views"
    description = "Supported LOCAL radius-T views vs independent BFS marks"

    def generate(self, rng: random.Random) -> dict:
        return random_supported_instance_params(rng)

    def check(self, params: dict) -> str | None:
        support = build_support_graph(params)
        instance = SupportedInstance.from_graphs(support, params["input_edges"])
        radius = params["radius"]
        adjacency = {node: sorted(support.neighbors(node)) for node in support}
        input_edges = {frozenset(edge) for edge in params["input_edges"]}
        all_edges = {frozenset(edge) for edge in params["edges"]}
        for node in sorted(support.nodes):
            view = instance.view(node, radius)
            ball = _reference_ball(adjacency, node, radius)
            expected = {
                frozenset((member, neighbor)): frozenset((member, neighbor))
                in input_edges
                for member in ball
                for neighbor in adjacency[member]
            }
            if view._visible_marks != expected:
                missing = sorted(
                    tuple(sorted(edge)) for edge in expected if edge not in view._visible_marks
                )
                extra = sorted(
                    tuple(sorted(edge)) for edge in view._visible_marks if edge not in expected
                )
                return (
                    f"visible marks of {node!r} at radius {radius} disagree "
                    f"with the reference BFS (missing={missing}, extra={extra})"
                )
            for edge in sorted(all_edges - set(expected), key=sorted):
                u, v = sorted(edge)
                try:
                    view.is_input_edge(u, v)
                except LocalityViolationError:
                    continue
                return (
                    f"mark of out-of-radius edge {(u, v)} was readable from "
                    f"{node!r} at radius {radius}"
                )
            expected_inputs = sorted(
                (
                    neighbor
                    for neighbor in adjacency[node]
                    if frozenset((node, neighbor)) in input_edges
                ),
                key=lambda v: instance.network.ids[v],
            )
            if view.input_neighbors(node) != expected_inputs:
                return (
                    f"input_neighbors of {node!r} disagree with the input "
                    f"graph adjacency"
                )
        result = run_supported_view_algorithm(
            instance, radius, lambda view: sum(view._visible_marks.values())
        )
        if result.rounds != radius:
            return (
                f"view runner accounted {result.rounds} rounds for a "
                f"radius-{radius} algorithm"
            )
        return None

    def shrink(self, params: dict) -> Iterator[dict]:
        if params["radius"] > 0:
            yield {**params, "radius": params["radius"] - 1}
        for index in range(len(params["input_edges"])):
            kept = [
                edge
                for position, edge in enumerate(params["input_edges"])
                if position != index
            ]
            yield {**params, "input_edges": kept}
        for index, removed in enumerate(params["edges"]):
            edges = [
                edge
                for position, edge in enumerate(params["edges"])
                if position != index
            ]
            inputs = [edge for edge in params["input_edges"] if edge != removed]
            yield {**params, "edges": edges, "input_edges": inputs}


# ---------------------------------------------------------------------------
# explore: store-memoized canonical expansion vs direct operator calls


class ExploreOracle(Oracle):
    name = "explore"
    description = (
        "store-memoized canonical RE expansion vs direct kernel/reference calls"
    )

    def generate(self, rng: random.Random) -> dict:
        params = random_problem_params(rng)
        params["op"] = rng.choice(tuple(sorted(_ROUNDELIM_OPS)))
        params["budget"] = rng.choice((200, 2_000, ROUNDELIM_BUDGET))
        return params

    def check(self, params: dict) -> str | None:
        from repro.formalism.normalize import normal_form
        from repro.roundelim.explore import ProblemStore, STATUS_OK

        problem = build_problem(params)
        op, budget = params["op"], params["budget"]
        store = ProblemStore(capacity=8)
        form = store.intern(problem)

        # Digest invariance: a deterministic re-spelling of the alphabet
        # must land on the same content address.
        renamed = problem.rename(
            {label: f"R{index}" for index, label in enumerate(sorted(problem.alphabet))}
        )
        if normal_form(renamed).digest != form.digest:
            return "canonical digest changes under a label renaming"

        cold = store.apply(form.digest, op, budget)
        warm = store.apply(form.digest, op, budget)
        if warm != cold:
            return "memoized result differs from the freshly computed one"
        if store.stats.memory_hits == 0:
            return "second store lookup bypassed the memory tier"

        direct: dict[str, dict] = {}
        for engine in operators.ENGINES:
            try:
                result = _ROUNDELIM_OPS[op](problem, budget=budget, engine=engine)
            except SolverLimitError:
                direct[engine] = {"status": "budget_exhausted", "payload": None}
                continue
            direct[engine] = {
                "status": STATUS_OK,
                "payload": normal_form(result).payload,
            }
        if direct["kernel"]["status"] != direct["reference"]["status"]:
            return (
                f"kernel and reference disagree on budget exhaustion at "
                f"budget {budget} on {op}"
            )
        if cold["status"] != direct["kernel"]["status"]:
            return (
                f"store outcome {cold['status']!r} disagrees with the direct "
                f"calls ({direct['kernel']['status']!r}) at budget {budget}"
            )
        if cold["status"] != STATUS_OK:
            return None  # consistent exhaustion everywhere
        stored_payload = store.payload_of(cold["child"])
        for engine in operators.ENGINES:
            if canonical_dumps(direct[engine]["payload"]) != canonical_dumps(
                stored_payload
            ):
                return (
                    f"store-memoized canonical payload diverges from the "
                    f"direct {engine} call on {op}"
                )
        return None

    def shrink(self, params: dict) -> Iterator[dict]:
        if params["budget"] < ROUNDELIM_BUDGET:
            yield {**params, "budget": ROUNDELIM_BUDGET}
        for op in ("R_bar", "R"):
            if params["op"] not in (op, "R"):
                yield {**params, "op": op}
        for side in ("white", "black"):
            if len(params[side]) > 1:
                for index in range(len(params[side])):
                    configs = [
                        config
                        for position, config in enumerate(params[side])
                        if position != index
                    ]
                    yield {**params, side: configs}


# ---------------------------------------------------------------------------
# reliability: faulted runs vs fault-free baselines (the chaos harness)


#: Memoized fault-free baselines per scenario.  The clean run is
#: identical for every fault plan by the determinism contract, so one
#: baseline serves an entire fuzz session.
_RELIABILITY_BASELINES: dict[str, dict] = {}


def _reliability_baseline(scenario: str) -> dict:
    if scenario not in _RELIABILITY_BASELINES:
        from repro.reliability import chaos

        _RELIABILITY_BASELINES[scenario] = (
            chaos.explore_baseline()
            if scenario == "explore"
            else chaos.service_baseline()
        )
    return _RELIABILITY_BASELINES[scenario]


class ReliabilityOracle(Oracle):
    name = "reliability"
    description = (
        "faulted vs fault-free runs: byte parity, exactly-once re-dispatch"
    )

    def generate(self, rng: random.Random) -> dict:
        return random_fault_plan_params(rng)

    def check(self, params: dict) -> str | None:
        import tempfile

        from repro.reliability import chaos

        plan = build_fault_plan(params)
        scenario = params["scenario"]
        baseline = _reliability_baseline(scenario)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            case = chaos.run_case(scenario, plan, workdir, baseline=baseline)
        # ``retry_budget_exhausted`` without a failure is the invariant's
        # carve-out, not a finding; any recorded failure is one.
        if case["failures"]:
            return case["failures"][0]
        return None

    def shrink(self, params: dict) -> Iterator[dict]:
        faults = params["faults"]
        if len(faults) > 1:
            for index in range(len(faults)):
                yield {
                    **params,
                    "faults": [
                        fault
                        for position, fault in enumerate(faults)
                        if position != index
                    ],
                }
        # Weaken surviving faults toward the first hit (earlier hits are
        # easier to reason about in a minimized artifact).
        taken = {(site, hit) for site, hit, _kind in faults}
        for index, (site, hit, kind) in enumerate(faults):
            if hit > 1 and (site, hit - 1) not in taken:
                weakened = [list(fault) for fault in faults]
                weakened[index] = [site, hit - 1, kind]
                yield {**params, "faults": sorted(weakened)}


# ---------------------------------------------------------------------------
# Registry


ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        RoundElimOracle(),
        EngineParityOracle(),
        SolverOracle(),
        SatOracle(),
        SerializationOracle(),
        ViewsOracle(),
        ExploreOracle(),
        ReliabilityOracle(),
    )
}


def available_oracles() -> list[str]:
    """Sorted names of registered oracles."""
    return sorted(ORACLES)


def resolve_oracle(name: str) -> Oracle:
    """Look an oracle up by name."""
    try:
        return ORACLES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown oracle {name!r}; available: {available_oracles()}"
        ) from None


def run_check(oracle: Oracle, params: dict) -> str | None:
    """Check one case, converting an unexpected crash into a discrepancy.

    A differential harness must treat "one implementation raised" as a
    finding, not as a fuzzer error — the exception text becomes the
    discrepancy description.
    """
    try:
        return oracle.check(params)
    except Exception as error:  # noqa: BLE001 - any crash is a finding
        return f"exception during check: {type(error).__name__}: {error}"
