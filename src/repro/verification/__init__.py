"""Differential verification: generative fuzzing across redundant
implementations.

The repository intentionally contains several independently-implemented
answers to the same questions — object vs CSR-batched simulation, kernel
vs reference round elimination, CSP search vs brute-force enumeration,
view collection vs its definition.  This package turns that redundancy
into a correctness harness:

* :mod:`~repro.verification.generators` — seeded random problems, graphs,
  Supported LOCAL instances and serialization payloads, all described by
  replayable JSON dicts;
* :mod:`~repro.verification.oracles` — the differential oracle registry
  (``roundelim``, ``engines``, ``solver``, ``serialization``, ``views``);
* :mod:`~repro.verification.shrink` — a greedy minimizer for failing
  cases;
* :mod:`~repro.verification.corpus` — the serialized counterexample
  corpus under ``tests/corpus/`` and its replay path;
* :mod:`~repro.verification.cli` — ``python -m repro.verification``
  (``list`` / ``fuzz`` / ``replay``), seeded and jobs-parallel with
  byte-deterministic output.
"""

from repro.verification.corpus import (
    CORPUS_SCHEMA,
    DEFAULT_CORPUS_DIR,
    corpus_files,
    load_entry,
    make_entry,
    replay_entry,
    save_entry,
)
from repro.verification.oracles import (
    ORACLES,
    Oracle,
    available_oracles,
    resolve_oracle,
    run_check,
)
from repro.verification.shrink import ShrinkResult, shrink_failing_case
from repro.verification.cli import generate_cases, main, run_fuzz

__all__ = [
    "CORPUS_SCHEMA",
    "DEFAULT_CORPUS_DIR",
    "ORACLES",
    "Oracle",
    "ShrinkResult",
    "available_oracles",
    "corpus_files",
    "generate_cases",
    "load_entry",
    "main",
    "make_entry",
    "replay_entry",
    "resolve_oracle",
    "run_check",
    "run_fuzz",
    "save_entry",
    "shrink_failing_case",
]
