"""Entry point for ``python -m repro.verification``."""

import sys

from repro.verification.cli import main

if __name__ == "__main__":
    sys.exit(main())
