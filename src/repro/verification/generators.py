"""Seeded random *case* generators for the differential oracles.

Every generator produces a plain-JSON parameter dict (a *case*), and every
case has a matching ``build_*`` function that reconstructs the concrete
objects.  The split is what makes counterexamples replayable: the fuzzer
serializes the dict into ``tests/corpus/`` and the replay path rebuilds
the exact instance with no RNG involved.

Sizes are deliberately tiny — the oracles compare *exact* implementations
(brute-force enumeration, reference round elimination), so a case must
stay well inside their exponential envelopes.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.formalism.configurations import Configuration
from repro.formalism.constraints import Constraint
from repro.formalism.problems import Problem
from repro.utils import InvalidParameterError

#: Label pool for random problems (small on purpose: collisions between
#: configurations are what make R/R̄ interesting).
LABEL_POOL = ("A", "B", "C", "D")

#: Edge cap for solver-oracle graphs — brute force enumerates
#: |Σ|^edges assignments, so with |Σ| ≤ 3 this caps a case at 3^8.
MAX_SOLVER_EDGES = 8


# ---------------------------------------------------------------------------
# Random problems (alphabets / arities over repro.formalism)


def random_problem_params(
    rng: random.Random,
    *,
    max_alphabet: int = 3,
    max_arity: int = 3,
    max_configs: int = 4,
) -> dict:
    """A random problem as a JSON-able dict.

    ``alphabet`` may contain labels no configuration uses — R's maximal
    set configurations range over the *alphabet*, so unused labels are a
    distinct (and historically bug-prone) code path worth generating.
    """
    alphabet = sorted(rng.sample(LABEL_POOL, rng.randint(1, max_alphabet)))
    white_arity = rng.randint(1, max_arity)
    black_arity = rng.randint(1, max_arity)

    def configs(arity: int) -> list[list[str]]:
        count = rng.randint(1, max_configs)
        chosen = {
            tuple(sorted(rng.choice(alphabet) for _ in range(arity)))
            for _ in range(count)
        }
        return [list(config) for config in sorted(chosen)]

    return {
        "alphabet": alphabet,
        "white": configs(white_arity),
        "black": configs(black_arity),
    }


def build_problem(params: dict) -> Problem:
    """Reconstruct the :class:`Problem` a problem-params dict names."""
    alphabet = frozenset(params["alphabet"])
    if not alphabet:
        raise InvalidParameterError("problem params need a non-empty alphabet")
    return Problem(
        alphabet=alphabet,
        white=Constraint(Configuration(labels) for labels in params["white"]),
        black=Constraint(Configuration(labels) for labels in params["black"]),
        name="fuzz",
    )


# ---------------------------------------------------------------------------
# Random 2-colored graphs (the solver-oracle substrate)


def _alternating_cycle(n: int) -> tuple[list, list]:
    nodes = [(f"v{i}", "white" if i % 2 == 0 else "black") for i in range(n)]
    edges = [[f"v{i}", f"v{(i + 1) % n}"] for i in range(n)]
    return nodes, edges


def _alternating_path(n: int) -> tuple[list, list]:
    nodes = [(f"v{i}", "white" if i % 2 == 0 else "black") for i in range(n)]
    edges = [[f"v{i}", f"v{i + 1}"] for i in range(n - 1)]
    return nodes, edges


def _random_bipartite(rng: random.Random) -> tuple[list, list]:
    whites = [f"w{i}" for i in range(rng.randint(1, 3))]
    blacks = [f"b{i}" for i in range(rng.randint(1, 3))]
    nodes = [(w, "white") for w in whites] + [(b, "black") for b in blacks]
    pairs = [[w, b] for w in whites for b in blacks]
    rng.shuffle(pairs)
    keep = rng.randint(1, min(len(pairs), MAX_SOLVER_EDGES))
    return nodes, sorted(pairs[:keep])


def random_colored_graph_params(rng: random.Random) -> dict:
    """A random small 2-colored graph (explicit nodes + colors + edges)."""
    kind = rng.choice(("even_cycle", "path", "bipartite", "star"))
    if kind == "even_cycle":
        nodes, edges = _alternating_cycle(rng.choice((4, 6, 8)))
    elif kind == "path":
        nodes, edges = _alternating_path(rng.randint(2, 6))
    elif kind == "star":
        center = ("c", "white")
        leaves = [(f"l{i}", "black") for i in range(rng.randint(1, 3))]
        nodes = [center] + leaves
        edges = [["c", leaf] for leaf, _color in leaves]
    else:
        nodes, edges = _random_bipartite(rng)
    return {
        "kind": kind,
        "nodes": [[name, color] for name, color in nodes],
        "edges": edges,
    }


def build_colored_graph(params: dict) -> nx.Graph:
    """Reconstruct a 2-colored graph from its explicit description."""
    graph = nx.Graph()
    for name, color in params["nodes"]:
        graph.add_node(name, color=color)
    for u, v in params["edges"]:
        if u not in graph or v not in graph:
            raise InvalidParameterError(f"edge {(u, v)} uses undeclared nodes")
        graph.add_edge(u, v)
    return graph


# ---------------------------------------------------------------------------
# SAT-vs-CSP backend cases (graph × problem × activity / lift shapes)


def _random_incidence_graph(rng: random.Random) -> dict:
    """The 2-colored incidence graph of a small random hypergraph.

    White nodes are vertices, black nodes are hyperedges, an edge means
    membership — the instance shape Definition 5.6's S-solutions live
    on, with black degree equal to the hyperedge rank.
    """
    vertices = rng.randint(2, 4)
    hyperedges = rng.randint(1, 3)
    nodes = [[f"x{i}", "white"] for i in range(vertices)] + [
        [f"e{j}", "black"] for j in range(hyperedges)
    ]
    edges = []
    for j in range(hyperedges):
        rank = rng.randint(1, min(3, vertices))
        for i in sorted(rng.sample(range(vertices), rank)):
            edges.append([f"x{i}", f"e{j}"])
    return {"kind": "incidence", "nodes": nodes, "edges": sorted(edges)}


def random_sat_case_params(rng: random.Random) -> dict:
    """A random SAT-vs-CSP differential case.

    Four kinds cover the backend contract's surface: plain bipartite
    instances, S-solutions (random activity subsets), hypergraph
    incidence graphs, and lifted problems on their smallest biregular
    support (the Theorem 3.2 gate's instance shape).
    """
    kind = rng.choice(("bipartite", "s_solution", "hypergraph", "lift"))
    if kind == "bipartite":
        return {
            "kind": kind,
            "graph": random_colored_graph_params(rng),
            "problem": random_problem_params(rng),
        }
    if kind == "s_solution":
        graph = random_colored_graph_params(rng)
        whites = [name for name, color in graph["nodes"] if color == "white"]
        blacks = [name for name, color in graph["nodes"] if color == "black"]
        return {
            "kind": kind,
            "graph": graph,
            "problem": random_problem_params(rng),
            "white_active": sorted(
                rng.sample(whites, rng.randint(0, len(whites)))
            ),
            "black_active": sorted(
                rng.sample(blacks, rng.randint(0, len(blacks)))
            ),
        }
    if kind == "hypergraph":
        return {
            "kind": kind,
            "graph": _random_incidence_graph(rng),
            "problem": random_problem_params(rng),
        }
    # "lift": small arities keep the set-label alphabet of the lifted
    # problem tiny (≤ 3 labels, ≤ 4 support edges).
    return {
        "kind": "lift",
        "problem": random_problem_params(
            rng, max_alphabet=2, max_arity=2, max_configs=3
        ),
    }


def build_sat_case(params: dict):
    """Reconstruct ``(graph, problem, white_active, black_active)``.

    Lift cases derive both the support (the smallest biregular graph of
    the base problem's arities) and the lifted problem deterministically
    from the stored base problem, so the case dict stays plain JSON.
    """
    if params["kind"] == "lift":
        from repro.core.lift import lift

        base = build_problem(params["problem"])
        nodes = [[f"w{i}", "white"] for i in range(base.black_arity)] + [
            [f"b{j}", "black"] for j in range(base.white_arity)
        ]
        edges = [
            [f"w{i}", f"b{j}"]
            for i in range(base.black_arity)
            for j in range(base.white_arity)
        ]
        graph = build_colored_graph({"nodes": nodes, "edges": edges})
        lifted = lift(base, base.white_arity, base.black_arity).to_problem()
        return graph, lifted, None, None
    graph = build_colored_graph(params["graph"])
    problem = build_problem(params["problem"])
    white_active = black_active = None
    if params["kind"] == "s_solution":
        whites = frozenset(params["white_active"])
        blacks = frozenset(params["black_active"])
        white_active = whites.__contains__
        black_active = blacks.__contains__
    return graph, problem, white_active, black_active


# ---------------------------------------------------------------------------
# Engine-parity runs (spec × algorithm × size × seed)


#: Every registered algorithm, exercised through a compatible spec.  The
#: fuzzer varies n / seed (and thereby the seeded default network).
#: Every registered algorithm now names a numpy kernel, so each row
#: differentially tests a kernel against the per-node engines (the
#: fallback path keeps its own coverage in tests/local/test_vectorized.py
#: via spec-less programs).
ENGINE_CASE_MATRIX: tuple[tuple[str, str], ...] = (
    ("matching:delta=3,x=0,y=1", "matching:proposal"),
    ("maximal-matching:delta=4", "matching:proposal"),
    ("mis:delta=3", "mis:aapr23"),
    ("mis:delta=3", "mis:luby"),
    ("mis:delta=3", "ruling-set:class-sweep"),
    ("coloring:delta=3,colors=4", "coloring:class-sweep"),
    ("ruling-set:delta=3,colors=1,beta=2", "ruling-set:class-sweep"),
    ("arbdefective:delta=4,colors=2", "arbdefective:class-sweep"),
    ("sinkless-orientation:delta=3", "sinkless-orientation:global"),
)


def random_engine_case_params(rng: random.Random) -> dict:
    """A random (spec, algorithm, n, seed) engine-parity case."""
    spec, algorithm = ENGINE_CASE_MATRIX[rng.randrange(len(ENGINE_CASE_MATRIX))]
    return {
        "spec": spec,
        "algorithm": algorithm,
        "n": rng.choice((8, 12, 16, 24, 32)),
        "seed": rng.randrange(1000),
    }


# ---------------------------------------------------------------------------
# Supported LOCAL instances (support graph + input subgraph + radius)


def random_supported_instance_params(rng: random.Random) -> dict:
    """A random Supported LOCAL instance description.

    The support graph may be disconnected (two components) and the input
    graph G′ is a random — frequently disconnected — subset of support
    edges; ``radius`` includes the T=0 edge case.
    """
    kind = rng.choice(("cycle", "two_cycles", "random_regular", "path"))
    if kind == "cycle":
        n = rng.choice((4, 6, 8))
        nodes = [f"v{i}" for i in range(n)]
        edges = [[f"v{i}", f"v{(i + 1) % n}"] for i in range(n)]
    elif kind == "two_cycles":
        sizes = (rng.choice((3, 4)), rng.choice((3, 4)))
        nodes, edges = [], []
        for side, size in enumerate(sizes):
            ring = [f"c{side}n{i}" for i in range(size)]
            nodes.extend(ring)
            edges.extend(
                [ring[i], ring[(i + 1) % size]] for i in range(size)
            )
    elif kind == "path":
        n = rng.randint(2, 7)
        nodes = [f"v{i}" for i in range(n)]
        edges = [[f"v{i}", f"v{i + 1}"] for i in range(n - 1)]
    else:
        n = rng.choice((6, 8))
        graph = nx.random_regular_graph(3, n, seed=rng.randrange(1000))
        nodes = [f"v{i}" for i in range(n)]
        edges = sorted([f"v{u}", f"v{v}"] for u, v in graph.edges)
    keep = rng.randint(0, len(edges))
    shuffled = list(edges)
    rng.shuffle(shuffled)
    input_edges = sorted(sorted(edge) for edge in shuffled[:keep])
    return {
        "kind": kind,
        "nodes": nodes,
        "edges": sorted(sorted(edge) for edge in edges),
        "input_edges": input_edges,
        "radius": rng.randint(0, 3),
    }


def build_support_graph(params: dict) -> nx.Graph:
    """Reconstruct the support graph of a supported-instance case."""
    graph = nx.Graph()
    graph.add_nodes_from(params["nodes"])
    for u, v in params["edges"]:
        graph.add_edge(u, v)
    return graph


# ---------------------------------------------------------------------------
# Fault plans (the reliability oracle's case shape)


#: Chaos scenarios the reliability oracle fuzzes.  ``transport`` is
#: deliberately absent: it binds a real HTTP daemon per case, which
#: belongs in the chaos matrix (CI's chaos job), not in a fuzz loop.
RELIABILITY_SCENARIOS = ("service", "explore")

#: Fault hits are drawn from [1, MAX_FAULT_HIT] (hit 1 = the first time
#: the site is reached): the chaos workload touches each site a handful
#: of times, so late hits never fire — itself a case worth generating (a
#: plan that does nothing must trivially preserve parity).
MAX_FAULT_HIT = 4


def random_fault_plan_params(
    rng: random.Random, *, max_faults: int = 3
) -> dict:
    """A random chaos case: a scenario plus explicit (site, hit, kind)
    triples.

    The faults are spelled out rather than stored as a plan seed so a
    corpus entry replays with no RNG and the shrinker can drop or
    weaken individual faults structurally.
    """
    from repro.reliability.chaos import SCENARIO_SITES
    from repro.reliability.faults import FAULT_SITES

    scenario = rng.choice(RELIABILITY_SCENARIOS)
    sites = SCENARIO_SITES[scenario]
    taken = set()
    faults = []
    for _ in range(rng.randint(1, max_faults)):
        site = rng.choice(sites)
        hit = rng.randint(1, MAX_FAULT_HIT)
        if (site, hit) in taken:
            continue  # at most one fault per (site, hit), like FaultPlan
        taken.add((site, hit))
        faults.append([site, hit, rng.choice(FAULT_SITES[site])])
    return {"scenario": scenario, "faults": sorted(faults)}


def build_fault_plan(params: dict):
    """Reconstruct the :class:`~repro.reliability.faults.FaultPlan` a
    fault-plan-params dict names (scenario validated here so a corrupted
    corpus entry fails loudly)."""
    from repro.reliability.faults import FaultPlan

    if params.get("scenario") not in RELIABILITY_SCENARIOS:
        raise InvalidParameterError(
            f"fault-plan params name unknown scenario "
            f"{params.get('scenario')!r}; known: {list(RELIABILITY_SCENARIOS)}"
        )
    return FaultPlan.from_faults(params["faults"], name="fuzz")


# ---------------------------------------------------------------------------
# Canonical-serialization payloads (spec trees → Python values)


def random_value_tree(rng: random.Random, depth: int = 3) -> dict:
    """A JSON-able *spec tree* describing a nested Python value.

    The builder realizes it with tuples, sets, frozensets and non-string
    dict keys — the shapes :mod:`repro.utils.serialization` must encode
    canonically.
    """
    leaves = ("int", "str", "bool", "none", "float")
    branches = ("list", "tuple", "set", "frozenset", "dict")
    kind = rng.choice(leaves if depth <= 0 else leaves + branches * 2)
    if kind == "int":
        return {"kind": "int", "value": rng.randint(-99, 99)}
    if kind == "str":
        return {"kind": "str", "value": "s" + str(rng.randint(0, 99))}
    if kind == "bool":
        return {"kind": "bool", "value": rng.random() < 0.5}
    if kind == "none":
        return {"kind": "none"}
    if kind == "float":
        return {"kind": "float", "value": rng.choice((0.0, 0.5, -1.25, 3.75))}
    width = rng.randint(0, 3)
    if kind in ("set", "frozenset"):
        # Members must be hashable: restrict to scalar leaves.
        items = [random_value_tree(rng, 0) for _ in range(width)]
        return {"kind": kind, "items": items}
    if kind == "dict":
        entries = []
        for index in range(width):
            key_kind = rng.choice(("str", "int", "frozenset", "tuple"))
            if key_kind == "str":
                key: dict = {"kind": "str", "value": f"k{index}"}
            elif key_kind == "int":
                key = {"kind": "int", "value": rng.randint(0, 9)}
            elif key_kind == "tuple":
                key = {
                    "kind": "tuple",
                    "items": [random_value_tree(rng, 0) for _ in range(2)],
                }
            else:
                key = {
                    "kind": "frozenset",
                    "items": [
                        {"kind": "str", "value": rng.choice(("u", "v", "w"))}
                        for _ in range(2)
                    ],
                }
            entries.append([key, random_value_tree(rng, depth - 1)])
        return {"kind": "dict", "entries": entries}
    return {
        "kind": kind,
        "items": [random_value_tree(rng, depth - 1) for _ in range(width)],
    }


def build_value(tree: dict):
    """Realize a spec tree as the Python value it describes."""
    kind = tree["kind"]
    if kind in ("int", "str", "bool", "float"):
        return tree["value"]
    if kind == "none":
        return None
    if kind == "list":
        return [build_value(item) for item in tree["items"]]
    if kind == "tuple":
        return tuple(build_value(item) for item in tree["items"])
    if kind == "set":
        return {build_value(item) for item in tree["items"]}
    if kind == "frozenset":
        return frozenset(build_value(item) for item in tree["items"])
    if kind == "dict":
        return {
            build_value(key): build_value(value)
            for key, value in tree["entries"]
        }
    raise InvalidParameterError(f"unknown value-tree kind {kind!r}")
