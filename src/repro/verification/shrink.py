"""Greedy counterexample minimization.

Standard property-based-testing shrinking: ask the oracle for structurally
smaller candidate cases, keep the first one that still fails, repeat until
no candidate fails (a local minimum) or the attempt budget runs out.  The
final case is what gets serialized into the corpus — small enough to read.

A candidate may fail *differently* from the original; that is accepted
(the minimized case is a counterexample either way, and insisting on an
identical message would keep shrinkers from crossing failure-mode
boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.verification.oracles import Oracle, run_check

#: Total candidate evaluations one minimization may spend.
DEFAULT_SHRINK_BUDGET = 300


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized failing case plus how it was reached."""

    params: dict
    detail: str
    steps: int
    attempts: int


def shrink_failing_case(
    oracle: Oracle,
    params: dict,
    detail: str,
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> ShrinkResult:
    """Greedily minimize a failing case.

    ``params`` must already fail ``oracle`` with ``detail``; the result's
    ``params`` still fail (possibly with a different detail).
    """
    current, current_detail = params, detail
    steps = 0
    attempts = 0
    progressed = True
    while progressed and attempts < budget:
        progressed = False
        for candidate in oracle.shrink(current):
            attempts += 1
            candidate_detail = run_check(oracle, candidate)
            if candidate_detail is not None:
                current, current_detail = candidate, candidate_detail
                steps += 1
                progressed = True
                break
            if attempts >= budget:
                break
    return ShrinkResult(
        params=current, detail=current_detail, steps=steps, attempts=attempts
    )
